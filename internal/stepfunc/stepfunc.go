// Package stepfunc implements piecewise-constant step functions on the time
// axis [0, +inf). They are the geometric substrate of the scheduling library:
// resource availability profiles, per-task allocation profiles, and the
// "water level" manipulations of the greedy and water-filling algorithms are
// all expressed as step functions.
//
// A StepFunc f is defined by an increasing sequence of breakpoints
// 0 = t_0 < t_1 < ... < t_k and values v_0, ..., v_k with f(t) = v_i for
// t in [t_i, t_{i+1}) and f(t) = v_k for t >= t_k.
package stepfunc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/malleable-sched/malleable/internal/numeric"
)

// StepFunc is a piecewise-constant function of time. The zero value is not
// usable; construct instances with Constant or FromSteps.
type StepFunc struct {
	times  []float64 // times[0] == 0, strictly increasing
	values []float64 // values[i] holds on [times[i], times[i+1])
}

// Constant returns the step function that equals v everywhere.
func Constant(v float64) *StepFunc {
	return &StepFunc{times: []float64{0}, values: []float64{v}}
}

// FromSteps builds a step function from parallel slices of breakpoint times
// and values. times must start at 0 and be strictly increasing; the slices
// must have equal non-zero length. The input slices are copied.
func FromSteps(times, values []float64) (*StepFunc, error) {
	if len(times) == 0 || len(times) != len(values) {
		return nil, fmt.Errorf("stepfunc: need equal non-empty times and values, got %d and %d", len(times), len(values))
	}
	if times[0] != 0 {
		return nil, fmt.Errorf("stepfunc: first breakpoint must be 0, got %g", times[0])
	}
	for i := 1; i < len(times); i++ {
		if !(times[i] > times[i-1]) {
			return nil, fmt.Errorf("stepfunc: breakpoints must be strictly increasing (index %d: %g then %g)", i, times[i-1], times[i])
		}
	}
	f := &StepFunc{times: append([]float64(nil), times...), values: append([]float64(nil), values...)}
	return f, nil
}

// Clone returns a deep copy of f.
func (f *StepFunc) Clone() *StepFunc {
	return &StepFunc{
		times:  append([]float64(nil), f.times...),
		values: append([]float64(nil), f.values...),
	}
}

// NumPieces returns the number of constant pieces of f.
func (f *StepFunc) NumPieces() int { return len(f.times) }

// Breakpoints returns a copy of the breakpoint times of f (the first is 0).
func (f *StepFunc) Breakpoints() []float64 {
	return append([]float64(nil), f.times...)
}

// Values returns a copy of the piece values of f, aligned with Breakpoints.
func (f *StepFunc) Values() []float64 {
	return append([]float64(nil), f.values...)
}

// segmentIndex returns the index i such that t lies in [times[i], times[i+1])
// (or the last index if t is beyond the last breakpoint). t must be >= 0.
func (f *StepFunc) segmentIndex(t float64) int {
	// sort.SearchFloat64s returns the first index with times[i] >= t.
	i := sort.SearchFloat64s(f.times, t)
	if i < len(f.times) && f.times[i] == t {
		return i
	}
	return i - 1
}

// Value returns f(t). t must be >= 0.
func (f *StepFunc) Value(t float64) float64 {
	if t < 0 {
		panic("stepfunc: negative time")
	}
	return f.values[f.segmentIndex(t)]
}

// ensureBreakpoint splits the piece containing t so that t becomes an explicit
// breakpoint, and returns its index. The function value is unchanged.
func (f *StepFunc) ensureBreakpoint(t float64) int {
	if t < 0 {
		panic("stepfunc: negative time")
	}
	i := sort.SearchFloat64s(f.times, t)
	if i < len(f.times) && f.times[i] == t {
		return i
	}
	// Insert after i-1.
	f.times = append(f.times, 0)
	f.values = append(f.values, 0)
	copy(f.times[i+1:], f.times[i:])
	copy(f.values[i+1:], f.values[i:])
	f.times[i] = t
	f.values[i] = f.values[i-1]
	return i
}

// AddOn adds delta to f on the half-open interval [from, to). from must be
// <= to; if they are equal the function is unchanged. to may be
// math.Inf(1) to modify the whole tail.
func (f *StepFunc) AddOn(from, to, delta float64) {
	if from < 0 {
		panic("stepfunc: negative time")
	}
	if to < from {
		panic("stepfunc: AddOn with to < from")
	}
	if from == to || delta == 0 {
		return
	}
	i := f.ensureBreakpoint(from)
	j := len(f.times)
	if !math.IsInf(to, 1) {
		j = f.ensureBreakpoint(to)
		// ensureBreakpoint(to) may have shifted index i if to < from is
		// impossible, so i is still valid (to > from means insertion is after i).
	}
	for k := i; k < j; k++ {
		f.values[k] += delta
	}
}

// SetOn sets f to value v on [from, to).
func (f *StepFunc) SetOn(from, to, v float64) {
	if from < 0 {
		panic("stepfunc: negative time")
	}
	if to < from {
		panic("stepfunc: SetOn with to < from")
	}
	if from == to {
		return
	}
	i := f.ensureBreakpoint(from)
	j := len(f.times)
	if !math.IsInf(to, 1) {
		j = f.ensureBreakpoint(to)
	}
	for k := i; k < j; k++ {
		f.values[k] = v
	}
}

// Compact merges adjacent pieces whose values are exactly equal. It keeps the
// function semantically identical while bounding the representation size.
func (f *StepFunc) Compact() {
	outT := f.times[:1]
	outV := f.values[:1]
	for i := 1; i < len(f.times); i++ {
		if f.values[i] == outV[len(outV)-1] {
			continue
		}
		outT = append(outT, f.times[i])
		outV = append(outV, f.values[i])
	}
	f.times = outT
	f.values = outV
}

// Integrate returns the integral of f over [from, to). to may be +inf only if
// the tail value of f is zero, otherwise the integral diverges and Integrate
// panics.
func (f *StepFunc) Integrate(from, to float64) float64 {
	if from < 0 || to < from {
		panic("stepfunc: bad integration bounds")
	}
	if math.IsInf(to, 1) {
		if f.values[len(f.values)-1] != 0 {
			panic("stepfunc: divergent integral")
		}
		to = f.times[len(f.times)-1]
		if to < from {
			return 0
		}
	}
	var sum numeric.KahanSum
	i := f.segmentIndex(from)
	for ; i < len(f.times); i++ {
		segStart := math.Max(from, f.times[i])
		segEnd := to
		if i+1 < len(f.times) {
			segEnd = math.Min(to, f.times[i+1])
		}
		if segEnd <= segStart {
			if f.times[i] >= to {
				break
			}
			continue
		}
		sum.Add(f.values[i] * (segEnd - segStart))
		if segEnd == to {
			break
		}
	}
	return sum.Value()
}

// IntegrateMin returns the integral over [from, to) of min(cap, max(0, f(t))).
// This is the amount of work a task with degree bound cap can process between
// from and to when f is the availability profile.
func (f *StepFunc) IntegrateMin(from, to, capacity float64) float64 {
	if from < 0 || to < from {
		panic("stepfunc: bad integration bounds")
	}
	if math.IsInf(to, 1) {
		to = f.times[len(f.times)-1]
		if f.values[len(f.values)-1] > 0 && capacity > 0 {
			panic("stepfunc: divergent integral")
		}
		if to < from {
			return 0
		}
	}
	var sum numeric.KahanSum
	i := f.segmentIndex(from)
	for ; i < len(f.times); i++ {
		segStart := math.Max(from, f.times[i])
		segEnd := to
		if i+1 < len(f.times) {
			segEnd = math.Min(to, f.times[i+1])
		}
		if segEnd <= segStart {
			if f.times[i] >= to {
				break
			}
			continue
		}
		rate := math.Min(capacity, math.Max(0, f.values[i]))
		sum.Add(rate * (segEnd - segStart))
		if segEnd == to {
			break
		}
	}
	return sum.Value()
}

// TimeToProcess returns the earliest time C >= from such that a task starting
// at time from, with degree bound cap, processing at rate min(cap, max(0,f(t)))
// accumulates volume exactly V by time C. The second return value reports
// whether such a time exists (it does not if the achievable volume on
// [from, +inf) with the tail rate is insufficient, i.e. the tail rate is zero
// and the remaining finite area is < V).
func (f *StepFunc) TimeToProcess(from, capacity, V float64) (float64, bool) {
	if V <= numeric.Eps {
		return from, true
	}
	if from < 0 {
		panic("stepfunc: negative time")
	}
	remaining := V
	i := f.segmentIndex(from)
	cursor := from
	for {
		rate := math.Min(capacity, math.Max(0, f.values[i]))
		segEnd := math.Inf(1)
		if i+1 < len(f.times) {
			segEnd = f.times[i+1]
		}
		if math.IsInf(segEnd, 1) {
			if rate <= 0 {
				return 0, false
			}
			return cursor + remaining/rate, true
		}
		span := segEnd - cursor
		if rate > 0 {
			if rate*span >= remaining-numeric.Eps*math.Max(1, V) {
				return cursor + remaining/rate, true
			}
			remaining -= rate * span
		}
		cursor = segEnd
		i++
	}
}

// ConsumeMin subtracts min(cap, max(0, f(t))) from f on [from, to), i.e.
// records that a task with degree bound cap consumed as much of the profile as
// it could on that interval. It returns the total volume consumed.
func (f *StepFunc) ConsumeMin(from, to, capacity float64) float64 {
	if from < 0 || to < from {
		panic("stepfunc: bad bounds")
	}
	if from == to {
		return 0
	}
	i := f.ensureBreakpoint(from)
	j := f.ensureBreakpoint(to)
	var consumed numeric.KahanSum
	for k := i; k < j; k++ {
		rate := math.Min(capacity, math.Max(0, f.values[k]))
		segEnd := f.times[k+1]
		consumed.Add(rate * (segEnd - f.times[k]))
		f.values[k] -= rate
	}
	return consumed.Value()
}

// Min returns the pointwise minimum of f and g as a new step function.
func Min(f, g *StepFunc) *StepFunc { return combine(f, g, math.Min) }

// Max returns the pointwise maximum of f and g as a new step function.
func Max(f, g *StepFunc) *StepFunc { return combine(f, g, math.Max) }

// Add returns the pointwise sum of f and g as a new step function.
func Add(f, g *StepFunc) *StepFunc {
	return combine(f, g, func(a, b float64) float64 { return a + b })
}

// Sub returns the pointwise difference f-g as a new step function.
func Sub(f, g *StepFunc) *StepFunc {
	return combine(f, g, func(a, b float64) float64 { return a - b })
}

func combine(f, g *StepFunc, op func(a, b float64) float64) *StepFunc {
	times := mergeBreakpoints(f.times, g.times)
	values := make([]float64, len(times))
	for i, t := range times {
		values[i] = op(f.Value(t), g.Value(t))
	}
	out := &StepFunc{times: times, values: values}
	out.Compact()
	return out
}

func mergeBreakpoints(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// MaxValueOn returns the maximum value of f on [from, to).
func (f *StepFunc) MaxValueOn(from, to float64) float64 {
	if from < 0 || to <= from {
		panic("stepfunc: bad bounds")
	}
	m := math.Inf(-1)
	i := f.segmentIndex(from)
	for ; i < len(f.times); i++ {
		if f.times[i] >= to {
			break
		}
		if f.values[i] > m {
			m = f.values[i]
		}
	}
	return m
}

// MinValueOn returns the minimum value of f on [from, to).
func (f *StepFunc) MinValueOn(from, to float64) float64 {
	if from < 0 || to <= from {
		panic("stepfunc: bad bounds")
	}
	m := math.Inf(1)
	i := f.segmentIndex(from)
	for ; i < len(f.times); i++ {
		if f.times[i] >= to {
			break
		}
		if f.values[i] < m {
			m = f.values[i]
		}
	}
	return m
}

// LastBreakpoint returns the largest breakpoint time of f.
func (f *StepFunc) LastBreakpoint() float64 { return f.times[len(f.times)-1] }

// NextBreakpointAfter returns the first breakpoint of f strictly after t, or
// +Inf if t is at or beyond the last breakpoint. It performs no allocation,
// so event loops may call it per event.
func (f *StepFunc) NextBreakpointAfter(t float64) float64 {
	// First index with times[i] > t.
	i := sort.Search(len(f.times), func(i int) bool { return f.times[i] > t })
	if i >= len(f.times) {
		return math.Inf(1)
	}
	return f.times[i]
}

// TailValue returns the value of f after its last breakpoint.
func (f *StepFunc) TailValue() float64 { return f.values[len(f.values)-1] }

// Equal reports whether f and g represent the same function up to the default
// numeric tolerance, comparing them at the union of their breakpoints.
func Equal(f, g *StepFunc) bool {
	for _, t := range mergeBreakpoints(f.times, g.times) {
		if !numeric.ApproxEqual(f.Value(t), g.Value(t)) {
			return false
		}
	}
	return true
}

// String renders the step function as a compact human-readable description,
// e.g. "[0,2):3 [2,5):1 [5,inf):0".
func (f *StepFunc) String() string {
	var b strings.Builder
	for i := range f.times {
		end := "inf"
		if i+1 < len(f.times) {
			end = fmt.Sprintf("%g", f.times[i+1])
		}
		fmt.Fprintf(&b, "[%g,%s):%g", f.times[i], end, f.values[i])
		if i+1 < len(f.times) {
			b.WriteByte(' ')
		}
	}
	return b.String()
}
