package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/workload"
)

// The stale-batched determinism contract, asserted like the parallel and
// speculative equivalence suites: the run at Workers=0 is the reference, and
// every other worker count — 1, a few, all shards, beyond the shards — must
// reproduce it byte for byte (dispatch sequence, merged result, shared-sink
// order, fleet-probe trace), for both window-stale routers, with and
// without a probe. Unlike those suites the reference is NOT the sequential
// exact-view coordinator: stale routing is its own deterministic schedule.
func TestStaleBatchedByteIdenticalAcrossWorkers(t *testing.T) {
	const n, shards, seed = 3000, 4, 7
	newStream := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(60.8), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	newRouter := func(name string) Router {
		r, err := RouterByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, router := range []string{"least-backlog", "po2"} {
		for _, withProbe := range []bool{false, true} {
			mode := "noprobe"
			if withProbe {
				mode = "probe"
			}
			t.Run(fmt.Sprintf("%s/%s", router, mode), func(t *testing.T) {
				base := Config{Shards: shards, P: 8, Policy: wdeq(t), StaleRouting: true}
				base.Router = newRouter(router)
				ref := captureRun(t, base, newStream(), withProbe)
				if len(ref.dispatch) != n {
					t.Fatalf("reference run routed %d arrivals, want %d", len(ref.dispatch), n)
				}
				for _, workers := range []int{1, 2, 3, shards, 16} {
					cfg := base
					cfg.Router = newRouter(router)
					cfg.Workers = workers
					got := captureRun(t, cfg, newStream(), withProbe)
					assertCapturesEqual(t, ref, got, fmt.Sprintf("workers=%d", workers))
				}
			})
		}
	}
}

// The adversarial window-edge stream — tied releases across window
// boundaries, zero-volume tasks completing exactly at horizons — must also
// be worker-count-invariant under stale routing.
func TestStaleBatchedWindowBoundaryEdgeCases(t *testing.T) {
	const n, shards = 4 * batchSize, 3
	base := Config{Shards: shards, P: 8, Policy: wdeq(t), StaleRouting: true, Router: NewLeastBacklog()}
	ref := captureRun(t, base, sliceStream(boundaryArrivals(n)), false)
	for _, workers := range []int{1, 2, 3} {
		cfg := base
		cfg.Router = NewLeastBacklog()
		cfg.Workers = workers
		got := captureRun(t, cfg, sliceStream(boundaryArrivals(n)), false)
		assertCapturesEqual(t, ref, got, fmt.Sprintf("workers=%d", workers))
	}
}

// Without a shared sink the stale work loop takes the FeedBatch fast path;
// with one it interleaves per arrival for the sink buffer's window floor.
// Both must produce the same dispatches and merged result — the cluster-level
// face of FeedBatch's bitwise-equivalence contract.
func TestStaleBatchedFeedBatchPathMatchesSinkPath(t *testing.T) {
	const n, shards, seed = 3000, 4, 7
	run := func(workers int, withSink bool) ([]int, []byte) {
		stream, err := workload.NewStream(skewedConfig(60.8), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		routed, rec := record(NewLeastBacklog())
		cfg := Config{Shards: shards, P: 8, Policy: wdeq(t), Router: routed, StaleRouting: true, Workers: workers}
		if withSink {
			cfg.Sink = sinkFunc(func(engine.TaskMetrics) {})
		}
		res, err := Run(cfg, stream)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return rec.dispatch, blob
	}
	refDispatch, refBlob := run(0, false)
	for _, workers := range []int{0, 4} {
		for _, withSink := range []bool{false, true} {
			dispatch, blob := run(workers, withSink)
			label := fmt.Sprintf("workers=%d sink=%v", workers, withSink)
			if len(dispatch) != len(refDispatch) {
				t.Fatalf("%s: %d dispatches vs %d", label, len(dispatch), len(refDispatch))
			}
			for i := range refDispatch {
				if dispatch[i] != refDispatch[i] {
					t.Fatalf("%s: dispatch %d routed to %d, reference chose %d", label, i, dispatch[i], refDispatch[i])
				}
			}
			if string(blob) != string(refBlob) {
				t.Fatalf("%s: merged LoadResult differs from the reference", label)
			}
		}
	}
}

// Stale routing really is a different (deterministic) schedule, and the
// result reports its view cadence: one view per full window plus one for
// the remainder, at the fixed window size.
func TestStaleBatchedViewAccounting(t *testing.T) {
	const n, shards, seed = 3000, 4, 7
	stream, err := workload.NewStream(skewedConfig(60.8), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), StaleRouting: true}, stream)
	if err != nil {
		t.Fatal(err)
	}
	wantViews := (n + batchSize - 1) / batchSize
	if res.StaleViews != wantViews || res.StaleWindow != batchSize {
		t.Fatalf("stale accounting: views=%d window=%d, want %d/%d", res.StaleViews, res.StaleWindow, wantViews, batchSize)
	}
	// The exact-view run reports no stale counters.
	exact := runCluster(t, "least-backlog", shards, n, seed)
	if exact.StaleViews != 0 || exact.StaleWindow != 0 {
		t.Fatalf("exact run leaked stale counters: views=%d window=%d", exact.StaleViews, exact.StaleWindow)
	}
	if exact.Flow.P99 == res.Flow.P99 && exact.PeakBacklog == res.PeakBacklog {
		t.Log("stale and exact least-backlog coincided on every compared metric (possible, but suspicious)")
	}
}

// Speculate and StaleRouting both claim the parallel coordinator; stale
// takes precedence, so the combination must match plain stale byte for byte
// and report no rollbacks.
func TestStaleRoutingPrecedesSpeculate(t *testing.T) {
	const n, shards, seed = 2000, 4, 11
	run := func(speculate bool) ([]byte, int) {
		stream, err := workload.NewStream(skewedConfig(60.8), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(),
			StaleRouting: true, Speculate: speculate, Workers: 4,
		}, stream)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob, res.Rollbacks
	}
	plain, _ := run(false)
	both, rollbacks := run(true)
	if string(plain) != string(both) {
		t.Fatal("StaleRouting+Speculate diverges from plain StaleRouting")
	}
	if rollbacks != 0 {
		t.Fatalf("stale-batched run reported %d rollbacks", rollbacks)
	}
}

// The StaleRouting flag is a capability check, not a blind switch: a
// state-free router ignores it (batched dispatch never reads the view), an
// exact-state router without the capability is rejected, and an engine
// probe is incompatible with the mode.
func TestStaleRoutingGating(t *testing.T) {
	const n, shards, seed = 2000, 4, 13
	newStream := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(60.8), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Round-robin: flag is a no-op, results identical to the plain run.
	run := func(staleRouting bool) []byte {
		res, err := Run(Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewRoundRobin(), StaleRouting: staleRouting, Workers: 2}, newStream())
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.StaleViews; staleRouting && got != 0 {
			t.Fatalf("state-free stale run published %d views", got)
		}
		return blob
	}
	if string(run(false)) != string(run(true)) {
		t.Fatal("StaleRouting changed a state-free router's results")
	}

	// An exact-state router without the WindowStale capability is rejected.
	exactOnly := &recordingRouter{inner: NewLeastBacklog()} // wrapper drops the capability
	_, err := Run(Config{Shards: shards, P: 8, Policy: wdeq(t), Router: exactOnly, StaleRouting: true}, newStream())
	if err == nil || !strings.Contains(err.Error(), "WindowStale") {
		t.Fatalf("exact-state router accepted under StaleRouting: %v", err)
	}

	// Engine probes interleave the global timeline; stale windows cannot.
	probe := engine.ProbeFunc(func(engine.Snapshot) {})
	_, err = Run(Config{
		Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(),
		StaleRouting: true, Opts: engine.Options{Probe: probe},
	}, newStream())
	if err == nil || !strings.Contains(err.Error(), "Opts.Probe") {
		t.Fatalf("engine probe accepted under StaleRouting: %v", err)
	}
}

// Config.Prefetch is a pure pipeline stage: every coordinator mode must be
// byte-identical with and without it.
func TestClusterPrefetchByteIdentical(t *testing.T) {
	const n, shards, seed = 3000, 4, 7
	newStream := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(60.8), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"sequential-exact", func() Config {
			return Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog()}
		}},
		{"windowed-exact", func() Config {
			return Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), Workers: 2}
		}},
		{"batched-state-free", func() Config {
			return Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewRoundRobin(), Workers: 2}
		}},
		{"stale-batched", func() Config {
			return Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), StaleRouting: true, Workers: 2}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := captureRun(t, tc.cfg(), newStream(), false)
			cfg := tc.cfg()
			cfg.Prefetch = true
			pre := captureRun(t, cfg, newStream(), false)
			assertCapturesEqual(t, plain, pre, "prefetch=true")
		})
	}
}
