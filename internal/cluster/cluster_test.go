package cluster

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

// skewedConfig is the Zipf-skewed multi-tenant workload of the router
// comparison: eight tenants, skew 1.5 (the head tenant absorbs ~58% of the
// traffic), offered load ~0.95 of the fleet capacity so backlog actually
// builds and routing quality shows in the tail.
func skewedConfig(rate float64) workload.ArrivalConfig {
	return workload.ArrivalConfig{
		Class:   workload.Uniform,
		P:       8,
		Process: workload.Poisson,
		Rate:    rate,
		Tenants: []workload.TenantSpec{
			{Name: "t0", Weight: 4, Share: 1}, {Name: "t1", Weight: 2, Share: 1},
			{Name: "t2", Weight: 1, Share: 1}, {Name: "t3", Weight: 1, Share: 1},
			{Name: "t4", Weight: 1, Share: 1}, {Name: "t5", Weight: 1, Share: 1},
			{Name: "t6", Weight: 1, Share: 1}, {Name: "t7", Weight: 1, Share: 1},
		},
		TenantSkew: 1.5,
	}
}

func wdeq(t *testing.T) engine.Policy {
	t.Helper()
	policy, err := engine.PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	return policy
}

func runCluster(t *testing.T, router string, shards, n int, seed int64) *engine.LoadResult {
	t.Helper()
	stream, err := workload.NewStream(skewedConfig(60.8), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RouterByName(router, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: shards, P: 8, Policy: wdeq(t), Router: r}, stream)
	if err != nil {
		t.Fatalf("%s: %v", router, err)
	}
	return res
}

// recordingRouter wraps a router and captures its dispatch sequence.
type recordingRouter struct {
	inner    Router
	dispatch []int
}

func (r *recordingRouter) Name() string { return r.inner.Name() }
func (r *recordingRouter) Route(a engine.Arrival, shards []ShardState) int {
	i := r.inner.Route(a, shards)
	r.dispatch = append(r.dispatch, i)
	return i
}

// The cluster determinism contract: with a fixed seed, every bundled router
// produces a byte-identical dispatch sequence and a byte-identical merged
// report across repeated runs AND across GOMAXPROCS settings — the
// coordinator is sequential by design, so parallelism must not be able to
// leak into results.
func TestClusterDeterministicAcrossRunsAndGOMAXPROCS(t *testing.T) {
	const n = 4000
	run := func(router string) ([]int, []byte) {
		stream, err := workload.NewStream(skewedConfig(60.8), n, 7)
		if err != nil {
			t.Fatal(err)
		}
		inner, err := RouterByName(router, 42)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingRouter{inner: inner}
		res, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: rec}, stream)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return rec.dispatch, blob
	}
	for _, router := range RouterNames() {
		t.Run(router, func(t *testing.T) {
			dispatch, blob := run(router)
			if len(dispatch) != n {
				t.Fatalf("routed %d arrivals, want %d", len(dispatch), n)
			}
			prev := runtime.GOMAXPROCS(1)
			dispatch1, blob1 := run(router)
			runtime.GOMAXPROCS(prev)
			dispatch2, blob2 := run(router)
			for i := range dispatch {
				if dispatch[i] != dispatch1[i] || dispatch[i] != dispatch2[i] {
					t.Fatalf("dispatch %d differs across runs: %d vs %d vs %d", i, dispatch[i], dispatch1[i], dispatch2[i])
				}
			}
			if string(blob) != string(blob1) || string(blob) != string(blob2) {
				t.Fatalf("merged reports differ across runs/GOMAXPROCS")
			}
		})
	}
}

// The router-quality acceptance criterion: on the Zipf-skewed near-saturated
// workload, both backlog-aware routers beat blind round-robin on p99 flow by
// a clear margin (the measured gap at this seed is ~1.2x; the assert leaves
// slack). The numbers behind this test are recorded in EXPERIMENTS.md.
func TestBacklogAwareRoutersBeatRoundRobinP99(t *testing.T) {
	const n, seed = 30000, 12345
	rr := runCluster(t, "round-robin", 4, n, seed)
	lb := runCluster(t, "least-backlog", 4, n, seed)
	po2 := runCluster(t, "po2", 4, n, seed)
	if rr.TotalTasks != n || lb.TotalTasks != n || po2.TotalTasks != n {
		t.Fatalf("task counts: rr=%d lb=%d po2=%d, want %d", rr.TotalTasks, lb.TotalTasks, po2.TotalTasks, n)
	}
	const margin = 1.05
	if rr.Flow.P99 < margin*lb.Flow.P99 {
		t.Errorf("least-backlog p99 %.4g does not beat round-robin %.4g by %.2fx", lb.Flow.P99, rr.Flow.P99, margin)
	}
	if rr.Flow.P99 < margin*po2.Flow.P99 {
		t.Errorf("po2 p99 %.4g does not beat round-robin %.4g by %.2fx", po2.Flow.P99, rr.Flow.P99, margin)
	}
	// The mechanism, not just the outcome: the backlog-aware routers keep
	// the worst per-shard queue strictly shorter.
	if lb.PeakBacklog >= rr.PeakBacklog || po2.PeakBacklog >= rr.PeakBacklog {
		t.Errorf("peak backlogs rr=%d lb=%d po2=%d: backlog-aware routers should cap the worst queue",
			rr.PeakBacklog, lb.PeakBacklog, po2.PeakBacklog)
	}
}

// A one-shard cluster is a single engine with extra bookkeeping: whatever
// the router, the merged result must match RunStreamInto on the same stream
// bit-for-bit — the anchor tying coordinator semantics to the kernel.
func TestSingleShardClusterMatchesEngine(t *testing.T) {
	const n, seed = 2000, 3
	cfg := skewedConfig(12)
	stream, err := workload.NewStream(cfg, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var want engine.Result
	agg := engine.NewAggregateSink()
	if err := engine.NewRunner().RunStreamInto(&want, 8, wdeq(t), stream, agg, engine.Options{}); err != nil {
		t.Fatal(err)
	}

	stream2, err := workload.NewStream(cfg, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: 1, P: 8, Policy: wdeq(t), Router: NewPowerOfTwo(5)}, stream2)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Shards[0].Result
	if got.Completed != want.Completed || got.Events != want.Events || got.MaxAlive != want.MaxAlive ||
		got.Makespan != want.Makespan || got.WeightedFlow != want.WeightedFlow || got.TotalFlow != want.TotalFlow {
		t.Fatalf("one-shard cluster diverges from the engine:\n%+v\nvs\n%+v", got, want)
	}
	if res.MinShardCompleted != n || res.MaxShardCompleted != n || res.PeakBacklog != want.MaxAlive {
		t.Fatalf("imbalance fields: min=%d max=%d peak=%d, want %d/%d/%d",
			res.MinShardCompleted, res.MaxShardCompleted, res.PeakBacklog, n, n, want.MaxAlive)
	}
}

// hash-tenant affinity: every task of a tenant lands on the same shard, and
// the per-shard completion spread mirrors the Zipf skew.
func TestHashTenantAffinity(t *testing.T) {
	const n = 3000
	stream, err := workload.NewStream(skewedConfig(30), n, 11)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewHashTenant(1)
	rec := &recordingRouter{inner: inner}
	// Capture tenants alongside the dispatch through a teeing stream.
	var tenants []int
	tee := streamFunc(func() (engine.Arrival, bool, error) {
		a, ok, err := stream.Next()
		if ok {
			tenants = append(tenants, a.Tenant)
		}
		return a, ok, err
	})
	res, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: rec}, tee)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTasks != n {
		t.Fatalf("completed %d, want %d", res.TotalTasks, n)
	}
	shardOf := map[int]int{}
	for i, tenant := range tenants {
		if prev, seen := shardOf[tenant]; seen && prev != rec.dispatch[i] {
			t.Fatalf("tenant %d split across shards %d and %d", tenant, prev, rec.dispatch[i])
		}
		shardOf[tenant] = rec.dispatch[i]
	}
	if res.MaxShardCompleted <= res.MinShardCompleted {
		t.Errorf("skewed affinity should imbalance shards: min=%d max=%d", res.MinShardCompleted, res.MaxShardCompleted)
	}
}

// streamFunc adapts a closure to an ArrivalStream.
type streamFunc func() (engine.Arrival, bool, error)

func (f streamFunc) Next() (engine.Arrival, bool, error) { return f() }

// Coordinator boundary validation and error paths.
func TestClusterErrors(t *testing.T) {
	policy := wdeq(t)
	valid := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(12), 32, 1)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		cfg  Config
		in   engine.ArrivalStream
		want string
	}{
		{"nil stream", Config{Shards: 2, P: 8, Policy: policy}, nil, "nil arrival stream"},
		{"zero shards", Config{Shards: 0, P: 8, Policy: policy}, valid(), "at least one shard"},
		{"nil policy", Config{Shards: 2, P: 8}, valid(), "nil policy"},
		{"bad capacity", Config{Shards: 2, P: -1, Policy: policy}, valid(), "positive"},
		{"empty stream", Config{Shards: 2, P: 8, Policy: policy},
			streamFunc(func() (engine.Arrival, bool, error) { return engine.Arrival{}, false, nil }), "empty arrival stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg, tc.in)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}

	t.Run("misordered stream", func(t *testing.T) {
		task := schedule.Task{Weight: 1, Volume: 1, Delta: 2}
		arr := []engine.Arrival{{Task: task, Release: 2}, {Task: task, Release: 1}}
		pos := 0
		s := streamFunc(func() (engine.Arrival, bool, error) {
			if pos >= len(arr) {
				return engine.Arrival{}, false, nil
			}
			a := arr[pos]
			pos++
			return a, true, nil
		})
		_, err := Run(Config{Shards: 2, P: 8, Policy: policy}, s)
		if err == nil || !strings.Contains(err.Error(), "non-decreasing") {
			t.Fatalf("error = %v, want release-order violation", err)
		}
	})

	t.Run("out-of-range router", func(t *testing.T) {
		bad := routerFunc(func(a engine.Arrival, shards []ShardState) int { return len(shards) })
		_, err := Run(Config{Shards: 2, P: 8, Policy: policy, Router: bad}, valid())
		if err == nil || !strings.Contains(err.Error(), "routed arrival") {
			t.Fatalf("error = %v, want out-of-range routing", err)
		}
	})

	t.Run("nil router defaults to round-robin", func(t *testing.T) {
		res, err := Run(Config{Shards: 2, P: 8, Policy: policy}, valid())
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxShardCompleted-res.MinShardCompleted > 1 {
			t.Errorf("default round-robin split %d/%d is not even", res.MinShardCompleted, res.MaxShardCompleted)
		}
	})
}

// routerFunc adapts a closure to a Router.
type routerFunc func(a engine.Arrival, shards []ShardState) int

func (f routerFunc) Name() string                                    { return "func" }
func (f routerFunc) Route(a engine.Arrival, shards []ShardState) int { return f(a, shards) }

// A shared Config.Sink must observe every completion of the fleet exactly
// once, in a deterministic order, with non-decreasing completion times (the
// global virtual timeline).
func TestClusterSharedSinkGlobalOrder(t *testing.T) {
	const n = 1500
	var completions []float64
	sink := sinkFunc(func(m engine.TaskMetrics) { completions = append(completions, m.Completion) })
	stream, err := workload.NewStream(skewedConfig(40), n, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: 3, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), Sink: sink}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(completions) != n || res.TotalTasks != n {
		t.Fatalf("sink saw %d completions, result %d, want %d", len(completions), res.TotalTasks, n)
	}
	for i := 1; i < len(completions); i++ {
		if completions[i] < completions[i-1] {
			t.Fatalf("completion %d at %g precedes %g — sink order is not the global timeline", i, completions[i], completions[i-1])
		}
	}
	if math.IsNaN(res.Flow.P99) || res.Flow.P99 <= 0 {
		t.Fatalf("merged p99 = %g", res.Flow.P99)
	}
}

// sinkFunc adapts a closure to a MetricSink.
type sinkFunc func(m engine.TaskMetrics)

func (f sinkFunc) Observe(m engine.TaskMetrics) { f(m) }
