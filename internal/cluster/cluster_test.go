package cluster

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

// skewedConfig is the Zipf-skewed multi-tenant workload of the router
// comparison: eight tenants, skew 1.5 (the head tenant absorbs ~58% of the
// traffic), offered load ~0.95 of the fleet capacity so backlog actually
// builds and routing quality shows in the tail.
func skewedConfig(rate float64) workload.ArrivalConfig {
	return workload.ArrivalConfig{
		Class:   workload.Uniform,
		P:       8,
		Process: workload.Poisson,
		Rate:    rate,
		Tenants: []workload.TenantSpec{
			{Name: "t0", Weight: 4, Share: 1}, {Name: "t1", Weight: 2, Share: 1},
			{Name: "t2", Weight: 1, Share: 1}, {Name: "t3", Weight: 1, Share: 1},
			{Name: "t4", Weight: 1, Share: 1}, {Name: "t5", Weight: 1, Share: 1},
			{Name: "t6", Weight: 1, Share: 1}, {Name: "t7", Weight: 1, Share: 1},
		},
		TenantSkew: 1.5,
	}
}

func wdeq(t *testing.T) engine.Policy {
	t.Helper()
	policy, err := engine.PolicyByName("wdeq")
	if err != nil {
		t.Fatal(err)
	}
	return policy
}

func runCluster(t *testing.T, router string, shards, n int, seed int64) *engine.LoadResult {
	t.Helper()
	return runClusterMode(t, router, shards, n, seed, false)
}

func runClusterMode(t *testing.T, router string, shards, n int, seed int64, staleRouting bool) *engine.LoadResult {
	t.Helper()
	stream, err := workload.NewStream(skewedConfig(60.8), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RouterByName(router, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: shards, P: 8, Policy: wdeq(t), Router: r, StaleRouting: staleRouting}, stream)
	if err != nil {
		t.Fatalf("%s: %v", router, err)
	}
	return res
}

// recordingRouter wraps a router and captures its dispatch sequence.
type recordingRouter struct {
	inner    Router
	dispatch []int
}

func (r *recordingRouter) Name() string { return r.inner.Name() }
func (r *recordingRouter) Route(a engine.Arrival, shards []ShardState) int {
	i := r.inner.Route(a, shards)
	r.dispatch = append(r.dispatch, i)
	return i
}

// The cluster determinism contract: with a fixed seed, every bundled router
// produces a byte-identical dispatch sequence and a byte-identical merged
// report across repeated runs AND across GOMAXPROCS settings — the
// coordinator is sequential by design, so parallelism must not be able to
// leak into results.
func TestClusterDeterministicAcrossRunsAndGOMAXPROCS(t *testing.T) {
	const n = 4000
	run := func(router string) ([]int, []byte) {
		stream, err := workload.NewStream(skewedConfig(60.8), n, 7)
		if err != nil {
			t.Fatal(err)
		}
		inner, err := RouterByName(router, 42)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingRouter{inner: inner}
		res, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: rec}, stream)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return rec.dispatch, blob
	}
	for _, router := range RouterNames() {
		t.Run(router, func(t *testing.T) {
			dispatch, blob := run(router)
			if len(dispatch) != n {
				t.Fatalf("routed %d arrivals, want %d", len(dispatch), n)
			}
			prev := runtime.GOMAXPROCS(1)
			dispatch1, blob1 := run(router)
			runtime.GOMAXPROCS(prev)
			dispatch2, blob2 := run(router)
			for i := range dispatch {
				if dispatch[i] != dispatch1[i] || dispatch[i] != dispatch2[i] {
					t.Fatalf("dispatch %d differs across runs: %d vs %d vs %d", i, dispatch[i], dispatch1[i], dispatch2[i])
				}
			}
			if string(blob) != string(blob1) || string(blob) != string(blob2) {
				t.Fatalf("merged reports differ across runs/GOMAXPROCS")
			}
		})
	}
}

// The router-quality acceptance criterion: on the Zipf-skewed near-saturated
// workload, both backlog-aware routers beat blind round-robin on p99 flow by
// a clear margin (the measured gap at this seed is ~1.2x; the assert leaves
// slack). The numbers behind this test are recorded in EXPERIMENTS.md.
func TestBacklogAwareRoutersBeatRoundRobinP99(t *testing.T) {
	const n, seed = 30000, 12345
	rr := runCluster(t, "round-robin", 4, n, seed)
	lb := runCluster(t, "least-backlog", 4, n, seed)
	po2 := runCluster(t, "po2", 4, n, seed)
	if rr.TotalTasks != n || lb.TotalTasks != n || po2.TotalTasks != n {
		t.Fatalf("task counts: rr=%d lb=%d po2=%d, want %d", rr.TotalTasks, lb.TotalTasks, po2.TotalTasks, n)
	}
	const margin = 1.05
	if rr.Flow.P99 < margin*lb.Flow.P99 {
		t.Errorf("least-backlog p99 %.4g does not beat round-robin %.4g by %.2fx", lb.Flow.P99, rr.Flow.P99, margin)
	}
	if rr.Flow.P99 < margin*po2.Flow.P99 {
		t.Errorf("po2 p99 %.4g does not beat round-robin %.4g by %.2fx", po2.Flow.P99, rr.Flow.P99, margin)
	}
	// The mechanism, not just the outcome: the backlog-aware routers keep
	// the worst per-shard queue strictly shorter.
	if lb.PeakBacklog >= rr.PeakBacklog || po2.PeakBacklog >= rr.PeakBacklog {
		t.Errorf("peak backlogs rr=%d lb=%d po2=%d: backlog-aware routers should cap the worst queue",
			rr.PeakBacklog, lb.PeakBacklog, po2.PeakBacklog)
	}
	// The stale-routing quality guard: window-stale least-backlog trades
	// view freshness for barrier-free dispatch, and the trade must stay
	// cheap — p99 flow within 1.10x of the exact-windowed router on this
	// same near-saturated workload (measured ~1.0x at this seed; the
	// stale-vs-exact-vs-round-robin table is in EXPERIMENTS.md).
	staleLB := runClusterMode(t, "least-backlog", 4, n, seed, true)
	if staleLB.TotalTasks != n {
		t.Fatalf("stale least-backlog completed %d tasks, want %d", staleLB.TotalTasks, n)
	}
	const staleMargin = 1.10
	if staleLB.Flow.P99 > staleMargin*lb.Flow.P99 {
		t.Errorf("stale least-backlog p99 %.4g exceeds %.2fx the exact-windowed %.4g",
			staleLB.Flow.P99, staleMargin, lb.Flow.P99)
	}
	// And it must still be a backlog-aware router, not a round-robin in
	// disguise: the round-robin margin holds for the stale view too.
	if rr.Flow.P99 < margin*staleLB.Flow.P99 {
		t.Errorf("stale least-backlog p99 %.4g does not beat round-robin %.4g by %.2fx",
			staleLB.Flow.P99, rr.Flow.P99, margin)
	}
}

// A one-shard cluster is a single engine with extra bookkeeping: whatever
// the router, the merged result must match RunStreamInto on the same stream
// bit-for-bit — the anchor tying coordinator semantics to the kernel.
func TestSingleShardClusterMatchesEngine(t *testing.T) {
	const n, seed = 2000, 3
	cfg := skewedConfig(12)
	stream, err := workload.NewStream(cfg, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var want engine.Result
	agg := engine.NewAggregateSink()
	if err := engine.NewRunner().RunStreamInto(&want, 8, wdeq(t), stream, agg, engine.Options{}); err != nil {
		t.Fatal(err)
	}

	stream2, err := workload.NewStream(cfg, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: 1, P: 8, Policy: wdeq(t), Router: NewPowerOfTwo(5)}, stream2)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Shards[0].Result
	if got.Completed != want.Completed || got.Events != want.Events || got.MaxAlive != want.MaxAlive ||
		got.Makespan != want.Makespan || got.WeightedFlow != want.WeightedFlow || got.TotalFlow != want.TotalFlow {
		t.Fatalf("one-shard cluster diverges from the engine:\n%+v\nvs\n%+v", got, want)
	}
	if res.MinShardCompleted != n || res.MaxShardCompleted != n || res.PeakBacklog != want.MaxAlive {
		t.Fatalf("imbalance fields: min=%d max=%d peak=%d, want %d/%d/%d",
			res.MinShardCompleted, res.MaxShardCompleted, res.PeakBacklog, n, n, want.MaxAlive)
	}
}

// hash-tenant affinity: every task of a tenant lands on the same shard, and
// the per-shard completion spread mirrors the Zipf skew.
func TestHashTenantAffinity(t *testing.T) {
	const n = 3000
	stream, err := workload.NewStream(skewedConfig(30), n, 11)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewHashTenant(1)
	rec := &recordingRouter{inner: inner}
	// Capture tenants alongside the dispatch through a teeing stream.
	var tenants []int
	tee := streamFunc(func() (engine.Arrival, bool, error) {
		a, ok, err := stream.Next()
		if ok {
			tenants = append(tenants, a.Tenant)
		}
		return a, ok, err
	})
	res, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: rec}, tee)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTasks != n {
		t.Fatalf("completed %d, want %d", res.TotalTasks, n)
	}
	shardOf := map[int]int{}
	for i, tenant := range tenants {
		if prev, seen := shardOf[tenant]; seen && prev != rec.dispatch[i] {
			t.Fatalf("tenant %d split across shards %d and %d", tenant, prev, rec.dispatch[i])
		}
		shardOf[tenant] = rec.dispatch[i]
	}
	if res.MaxShardCompleted <= res.MinShardCompleted {
		t.Errorf("skewed affinity should imbalance shards: min=%d max=%d", res.MinShardCompleted, res.MaxShardCompleted)
	}
}

// streamFunc adapts a closure to an ArrivalStream.
type streamFunc func() (engine.Arrival, bool, error)

func (f streamFunc) Next() (engine.Arrival, bool, error) { return f() }

// Coordinator boundary validation and error paths.
func TestClusterErrors(t *testing.T) {
	policy := wdeq(t)
	valid := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(12), 32, 1)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		cfg  Config
		in   engine.ArrivalStream
		want string
	}{
		{"nil stream", Config{Shards: 2, P: 8, Policy: policy}, nil, "nil arrival stream"},
		{"zero shards", Config{Shards: 0, P: 8, Policy: policy}, valid(), "at least one shard"},
		{"nil policy", Config{Shards: 2, P: 8}, valid(), "nil policy"},
		{"bad capacity", Config{Shards: 2, P: -1, Policy: policy}, valid(), "positive"},
		{"empty stream", Config{Shards: 2, P: 8, Policy: policy},
			streamFunc(func() (engine.Arrival, bool, error) { return engine.Arrival{}, false, nil }), "empty arrival stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg, tc.in)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}

	t.Run("misordered stream", func(t *testing.T) {
		task := schedule.Task{Weight: 1, Volume: 1, Delta: 2}
		arr := []engine.Arrival{{Task: task, Release: 2}, {Task: task, Release: 1}}
		pos := 0
		s := streamFunc(func() (engine.Arrival, bool, error) {
			if pos >= len(arr) {
				return engine.Arrival{}, false, nil
			}
			a := arr[pos]
			pos++
			return a, true, nil
		})
		_, err := Run(Config{Shards: 2, P: 8, Policy: policy}, s)
		if err == nil || !strings.Contains(err.Error(), "non-decreasing") {
			t.Fatalf("error = %v, want release-order violation", err)
		}
	})

	t.Run("out-of-range router", func(t *testing.T) {
		bad := routerFunc(func(a engine.Arrival, shards []ShardState) int { return len(shards) })
		_, err := Run(Config{Shards: 2, P: 8, Policy: policy, Router: bad}, valid())
		if err == nil || !strings.Contains(err.Error(), "routed arrival") {
			t.Fatalf("error = %v, want out-of-range routing", err)
		}
	})

	t.Run("nil router defaults to round-robin", func(t *testing.T) {
		res, err := Run(Config{Shards: 2, P: 8, Policy: policy}, valid())
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxShardCompleted-res.MinShardCompleted > 1 {
			t.Errorf("default round-robin split %d/%d is not even", res.MinShardCompleted, res.MaxShardCompleted)
		}
	})
}

// routerFunc adapts a closure to a Router.
type routerFunc func(a engine.Arrival, shards []ShardState) int

func (f routerFunc) Name() string                                    { return "func" }
func (f routerFunc) Route(a engine.Arrival, shards []ShardState) int { return f(a, shards) }

// A shared Config.Sink must observe every completion of the fleet exactly
// once, in a deterministic order, with non-decreasing completion times (the
// global virtual timeline).
func TestClusterSharedSinkGlobalOrder(t *testing.T) {
	const n = 1500
	var completions []float64
	sink := sinkFunc(func(m engine.TaskMetrics) { completions = append(completions, m.Completion) })
	stream, err := workload.NewStream(skewedConfig(40), n, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: 3, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), Sink: sink}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(completions) != n || res.TotalTasks != n {
		t.Fatalf("sink saw %d completions, result %d, want %d", len(completions), res.TotalTasks, n)
	}
	for i := 1; i < len(completions); i++ {
		if completions[i] < completions[i-1] {
			t.Fatalf("completion %d at %g precedes %g — sink order is not the global timeline", i, completions[i], completions[i-1])
		}
	}
	if math.IsNaN(res.Flow.P99) || res.Flow.P99 <= 0 {
		t.Fatalf("merged p99 = %g", res.Flow.P99)
	}
}

// sinkFunc adapts a closure to a MetricSink.
type sinkFunc func(m engine.TaskMetrics)

func (f sinkFunc) Observe(m engine.TaskMetrics) { f(m) }

// fleetProbe retains per-observation fleet summaries (test-only).
type fleetProbe struct {
	times      []float64
	dispatched []int
	backlogs   []int
	completed  []int
	shardCount int
}

func (p *fleetProbe) ObserveFleet(now float64, shards []ShardState) {
	p.shardCount = len(shards)
	d, b, c := 0, 0, 0
	for _, s := range shards {
		d += s.Dispatched
		b += s.Backlog
		c += s.Completed
	}
	p.times = append(p.times, now)
	p.dispatched = append(p.dispatched, d)
	p.backlogs = append(p.backlogs, b)
	p.completed = append(p.completed, c)
}

// Config.Probe observes every dispatch with exact fleet state: the total
// dispatch count advances by one per observation, times are non-decreasing,
// and the closing observation shows the fleet fully drained.
func TestClusterProbeObservesEveryDispatch(t *testing.T) {
	const n = 2000
	stream, err := workload.NewStream(skewedConfig(40), n, 21)
	if err != nil {
		t.Fatal(err)
	}
	probe := &fleetProbe{}
	res, err := Run(Config{Shards: 3, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), Probe: probe}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(probe.times); got != n+1 {
		t.Fatalf("probe fired %d times, want %d dispatches + 1 final", got, n)
	}
	if probe.shardCount != 3 {
		t.Fatalf("probe saw %d shards, want 3", probe.shardCount)
	}
	for i := 0; i < n; i++ {
		if probe.dispatched[i] != i+1 {
			t.Fatalf("observation %d: fleet dispatched %d, want %d", i, probe.dispatched[i], i+1)
		}
		// The rest-state invariant, fleet-wide: every dispatched task is
		// alive, completed, or still pending admission on its shard (the
		// just-fed arrival), so backlog+completed never exceeds dispatches.
		if probe.backlogs[i]+probe.completed[i] > probe.dispatched[i] {
			t.Fatalf("observation %d: backlog %d + completed %d exceeds dispatched %d",
				i, probe.backlogs[i], probe.completed[i], probe.dispatched[i])
		}
		if i > 0 && probe.times[i] < probe.times[i-1] {
			t.Fatalf("observation %d time %g precedes %g", i, probe.times[i], probe.times[i-1])
		}
	}
	final := len(probe.times) - 1
	if probe.completed[final] != n || probe.backlogs[final] != 0 {
		t.Fatalf("final observation: completed %d backlog %d, want %d and 0", probe.completed[final], probe.backlogs[final], n)
	}
	if probe.times[final] != res.Makespan {
		t.Fatalf("final observation at %g, want makespan %g", probe.times[final], res.Makespan)
	}
}

// ProbeEveryDispatches thins observations to every k-th dispatch; the final
// drained observation still always arrives.
func TestClusterProbeThinning(t *testing.T) {
	const n, k = 2000, 64
	stream, err := workload.NewStream(skewedConfig(40), n, 22)
	if err != nil {
		t.Fatal(err)
	}
	probe := &fleetProbe{}
	_, err = Run(Config{Shards: 3, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), Probe: probe, ProbeEveryDispatches: k}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(probe.times), n/k+1; got != want {
		t.Fatalf("probe fired %d times, want %d", got, want)
	}
	for i := 0; i < len(probe.dispatched)-1; i++ {
		if probe.dispatched[i] != (i+1)*k {
			t.Fatalf("observation %d at dispatch %d, want %d", i, probe.dispatched[i], (i+1)*k)
		}
	}
	if probe.completed[len(probe.completed)-1] != n {
		t.Fatalf("final observation completed %d, want %d", probe.completed[len(probe.completed)-1], n)
	}
}

// The coordinator's merged aggregate folds per-shard sinks in shard order —
// the satellite check that the deterministic merge and a global-order fold
// of the very same completions agree: task counts exactly, floating-point
// sums within round-off.
func TestClusterAggregateMergeOrdering(t *testing.T) {
	const n = 2500
	stream, err := workload.NewStream(skewedConfig(40), n, 23)
	if err != nil {
		t.Fatal(err)
	}
	globalAgg := engine.NewAggregateSink()
	res, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: NewPowerOfTwo(7), Sink: globalAgg}, stream)
	if err != nil {
		t.Fatal(err)
	}
	merged := res.Aggregate.PerTenant()
	global := globalAgg.PerTenant()
	if len(merged) != len(global) || len(merged) == 0 {
		t.Fatalf("tenant rows: merged %d vs global %d", len(merged), len(global))
	}
	relClose := func(a, b float64) bool {
		diff := math.Abs(a - b)
		return diff <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for i := range merged {
		m, g := merged[i], global[i]
		if m.Tenant != g.Tenant || m.Tasks != g.Tasks {
			t.Fatalf("tenant row %d: shard-order merge %+v vs global-order fold %+v", i, m, g)
		}
		if !relClose(m.WeightedFlow, g.WeightedFlow) || !relClose(m.MeanFlow, g.MeanFlow) || !relClose(m.MaxFlow, g.MaxFlow) {
			t.Fatalf("tenant row %d flow mismatch beyond round-off: %+v vs %+v", i, m, g)
		}
	}
	if res.Aggregate.Tasks() != n || globalAgg.Tasks() != n {
		t.Fatalf("aggregate totals %d/%d, want %d", res.Aggregate.Tasks(), globalAgg.Tasks(), n)
	}
	// Repeating the run reproduces the shard-order merge byte-for-byte.
	stream2, err := workload.NewStream(skewedConfig(40), n, 23)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: NewPowerOfTwo(7)}, stream2)
	if err != nil {
		t.Fatal(err)
	}
	again := res2.Aggregate.PerTenant()
	for i := range merged {
		if merged[i] != again[i] {
			t.Fatalf("tenant row %d not reproducible: %+v vs %+v", i, merged[i], again[i])
		}
	}
}
