package cluster

import (
	"runtime"
	"testing"

	"github.com/malleable-sched/malleable/internal/workload"
)

// The cluster soak: a quarter-million arrivals routed across an
// eight-shard fleet in one virtual timeline. It asserts the two properties
// a long cluster run must keep — every task completes exactly once, and the
// coordinator's memory stays O(shards · alive), not O(stream) (per-task
// rows are never retained). CI runs it under the race detector as a
// dedicated step; -short skips it to keep local iteration fast.
func TestClusterSoakRoutedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak drives 250k arrivals; skipped with -short")
	}
	const n = 250_000
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	stream, err := workload.NewStream(skewedConfig(57.6), n, 31)
	if err != nil {
		t.Fatal(err)
	}
	router, err := RouterByName("po2", 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: router}, stream)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTasks != n {
		t.Fatalf("completed %d tasks, want %d", res.TotalTasks, n)
	}
	min, max := res.MinShardCompleted, res.MaxShardCompleted
	if min <= 0 || max >= n {
		t.Fatalf("degenerate dispatch: min=%d max=%d", min, max)
	}
	if res.Flow.P99 <= 0 {
		t.Fatalf("p99 flow = %g", res.Flow.P99)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// The live-heap delta must be a fleet-sized constant, nowhere near the
	// ~40 MiB retaining 250k TaskMetrics rows would cost. 4 MiB of slack
	// absorbs sketch windows and allocator noise.
	if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > 4<<20 {
		t.Errorf("live heap grew by %d bytes over a %d-task cluster run; want a fleet-sized constant", delta, n)
	}
}

// The parallel soak: the same quarter-million-arrival fleet on a multi-worker
// coordinator, in every parallel mode — po2 reads fleet state (per-dispatch
// windows), round-robin is state-free (batched windows), and least-backlog
// with Speculate exercises the optimistic coordinator's checkpoint/rollback
// cycle across thousands of speculation windows. CI runs this under the race
// detector as a dedicated step, which is the whole point: the spin barrier,
// the per-shard ownership partition and the buffered sink handoff get a
// quarter-million windows of adversarial scheduling. The memory contract
// must hold too: worker stacks, batch scratch and checkpoint storage are
// fleet-sized, not stream-sized.
func TestClusterSoakParallelRoutedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel cluster soak drives 3x250k arrivals; skipped with -short")
	}
	const n = 250_000
	for _, tc := range []struct {
		router    string
		label     string
		speculate bool
	}{
		{"po2", "windowed", false},
		{"round-robin", "batched", false},
		{"least-backlog", "speculative", true},
	} {
		t.Run(tc.label, func(t *testing.T) {
			runtime.GC()
			var before runtime.MemStats
			runtime.ReadMemStats(&before)

			stream, err := workload.NewStream(skewedConfig(57.6), n, 31)
			if err != nil {
				t.Fatal(err)
			}
			router, err := RouterByName(tc.router, 8)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{Shards: 4, P: 8, Policy: wdeq(t), Router: router, Workers: 4, Speculate: tc.speculate}, stream)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalTasks != n {
				t.Fatalf("%s coordinator completed %d tasks, want %d", tc.label, res.TotalTasks, n)
			}
			if res.Flow.P99 <= 0 {
				t.Fatalf("p99 flow = %g", res.Flow.P99)
			}

			runtime.GC()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			if delta := int64(after.HeapAlloc) - int64(before.HeapAlloc); delta > 4<<20 {
				t.Errorf("live heap grew by %d bytes over a %d-task parallel cluster run; want a fleet-sized constant", delta, n)
			}
		})
	}
}
