package cluster

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

// recordingStateFree is a recordingRouter that preserves the wrapped
// router's state-free declaration, so recording the dispatch sequence does
// not silently demote a batched-mode run to the windowed mode.
type recordingStateFree struct {
	recordingRouter
}

func (r *recordingStateFree) StateFree() bool { return true }

// recordingWindowStale likewise preserves the wrapped router's window-stale
// declaration, so recording does not demote a stale-batched run either.
type recordingWindowStale struct {
	recordingRouter
}

func (r *recordingWindowStale) WindowStale() bool { return true }

// record wraps a router with dispatch recording, keeping the StateFree and
// WindowStale capabilities intact.
func record(inner Router) (Router, *recordingRouter) {
	if sf, ok := inner.(StateFreeRouter); ok && sf.StateFree() {
		r := &recordingStateFree{recordingRouter{inner: inner}}
		return r, &r.recordingRouter
	}
	if ws, ok := inner.(WindowStaleRouter); ok && ws.WindowStale() {
		r := &recordingWindowStale{recordingRouter{inner: inner}}
		return r, &r.recordingRouter
	}
	r := &recordingRouter{inner: inner}
	return r, r
}

// parallelCapture is everything observable about one cluster run: the
// dispatch sequence, the full merged result (JSON blob, so every field
// participates in the comparison), every shared-sink row in order, and the
// fleet-probe trace.
type parallelCapture struct {
	dispatch []int
	blob     []byte
	rows     []engine.TaskMetrics
	probe    *fleetProbe
}

func captureRun(t *testing.T, cfg Config, stream engine.ArrivalStream, withProbe bool) parallelCapture {
	t.Helper()
	routed, rec := record(cfg.Router)
	cfg.Router = routed
	var rows []engine.TaskMetrics
	cfg.Sink = sinkFunc(func(m engine.TaskMetrics) { rows = append(rows, m) })
	var probe *fleetProbe
	if withProbe {
		probe = &fleetProbe{}
		cfg.Probe = probe
	}
	res, err := Run(cfg, stream)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return parallelCapture{dispatch: rec.dispatch, blob: blob, rows: rows, probe: probe}
}

func assertCapturesEqual(t *testing.T, want, got parallelCapture, label string) {
	t.Helper()
	if len(want.dispatch) != len(got.dispatch) {
		t.Fatalf("%s: dispatch count %d vs sequential %d", label, len(got.dispatch), len(want.dispatch))
	}
	for i := range want.dispatch {
		if want.dispatch[i] != got.dispatch[i] {
			t.Fatalf("%s: dispatch %d routed to shard %d, sequential chose %d", label, i, got.dispatch[i], want.dispatch[i])
		}
	}
	if string(want.blob) != string(got.blob) {
		t.Fatalf("%s: merged LoadResult differs from the sequential coordinator's", label)
	}
	if len(want.rows) != len(got.rows) {
		t.Fatalf("%s: shared sink saw %d rows, sequential %d", label, len(got.rows), len(want.rows))
	}
	for i := range want.rows {
		if want.rows[i] != got.rows[i] {
			t.Fatalf("%s: sink row %d = %+v, sequential %+v", label, i, got.rows[i], want.rows[i])
		}
	}
	if (want.probe == nil) != (got.probe == nil) {
		t.Fatalf("%s: probe presence mismatch", label)
	}
	if want.probe != nil {
		if len(want.probe.times) != len(got.probe.times) {
			t.Fatalf("%s: probe fired %d times, sequential %d", label, len(got.probe.times), len(want.probe.times))
		}
		for i := range want.probe.times {
			if want.probe.times[i] != got.probe.times[i] ||
				want.probe.dispatched[i] != got.probe.dispatched[i] ||
				want.probe.backlogs[i] != got.probe.backlogs[i] ||
				want.probe.completed[i] != got.probe.completed[i] {
				t.Fatalf("%s: probe observation %d differs from sequential", label, i)
			}
		}
	}
}

// The tentpole contract: a parallel cluster run is byte-identical to the
// sequential coordinator at ANY worker count — dispatch sequence, merged
// LoadResult, shared-sink order, fleet-probe trace — for every bundled
// router, with and without a fleet probe (the probe pins the per-dispatch
// window even for state-free routers, so both parallel modes are exercised).
func TestParallelMatchesSequentialByteForByte(t *testing.T) {
	const n, shards, seed = 3000, 4, 7
	newStream := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(60.8), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	newRouter := func(name string) Router {
		r, err := RouterByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, router := range RouterNames() {
		for _, withProbe := range []bool{false, true} {
			mode := "noprobe"
			if withProbe {
				mode = "probe"
			}
			t.Run(fmt.Sprintf("%s/%s", router, mode), func(t *testing.T) {
				base := Config{Shards: shards, P: 8, Policy: wdeq(t)}
				base.Router = newRouter(router)
				seq := captureRun(t, base, newStream(), withProbe)
				if len(seq.dispatch) != n {
					t.Fatalf("sequential run routed %d arrivals, want %d", len(seq.dispatch), n)
				}
				for _, workers := range []int{1, 2, 3, shards, 16} {
					cfg := base
					cfg.Router = newRouter(router)
					cfg.Workers = workers
					par := captureRun(t, cfg, newStream(), withProbe)
					assertCapturesEqual(t, seq, par, fmt.Sprintf("workers=%d", workers))
				}
			})
		}
	}
}

// sliceStream adapts an arrival slice to an ArrivalStream.
func sliceStream(arrs []engine.Arrival) engine.ArrivalStream {
	pos := 0
	return streamFunc(func() (engine.Arrival, bool, error) {
		if pos >= len(arrs) {
			return engine.Arrival{}, false, nil
		}
		a := arrs[pos]
		pos++
		return a, true, nil
	})
}

// boundaryArrivals builds the adversarial stream for the window-edge tests:
// arrivals clustered on integer instants (eight per instant, so shard events
// collide with window horizons and with each other), every fourth task
// zero-volume (completes the instant it is admitted — exactly AT the window
// boundary), tenants cycling so hash-tenant spreads them.
func boundaryArrivals(n int) []engine.Arrival {
	arrs := make([]engine.Arrival, n)
	for i := range arrs {
		task := schedule.Task{Weight: 1 + float64(i%3), Volume: float64(1 + i%5), Delta: 2}
		if i%4 == 0 {
			task.Volume = 0 // zero-volume: admission and completion coincide
		}
		arrs[i] = engine.Arrival{
			Task:    task,
			Release: float64(i / 8), // eight simultaneous releases per instant
			Tenant:  i % 6,
		}
	}
	return arrs
}

// Window-boundary edge cases: zero-volume tasks completing exactly at the
// lookahead horizon, simultaneous events on several shards at the same
// instant, and equal-release runs crossing batch boundaries (n far exceeds
// batchSize). Both parallel modes must still reproduce the sequential run
// bit for bit.
func TestParallelWindowBoundaryEdgeCases(t *testing.T) {
	const n, shards = 4 * batchSize, 3
	for _, router := range []string{"round-robin", "least-backlog"} {
		t.Run(router, func(t *testing.T) {
			newRouter := func() Router {
				r, err := RouterByName(router, 5)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			base := Config{Shards: shards, P: 8, Policy: wdeq(t), Router: newRouter()}
			seq := captureRun(t, base, sliceStream(boundaryArrivals(n)), false)
			for _, workers := range []int{2, 3} {
				cfg := base
				cfg.Router = newRouter()
				cfg.Workers = workers
				par := captureRun(t, cfg, sliceStream(boundaryArrivals(n)), false)
				assertCapturesEqual(t, seq, par, fmt.Sprintf("workers=%d", workers))
			}
		})
	}
}

// Worker count beyond the shard count is capped, never wrong: 16 workers on
// 2 shards must match the sequential run exactly.
func TestParallelWorkersExceedShards(t *testing.T) {
	const n, shards = 2000, 2
	newStream := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(30), n, 13)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog()}
	seq := captureRun(t, base, newStream(), true)
	cfg := base
	cfg.Router = NewLeastBacklog()
	cfg.Workers = 16
	par := captureRun(t, cfg, newStream(), true)
	assertCapturesEqual(t, seq, par, "workers=16 shards=2")
}

// An engine-level probe (Options.Probe) interleaves every shard's rest
// states on the global timeline, which only the sequential coordinator can
// order; Workers must silently fall back and the probe trace must be
// identical to an explicitly sequential run's.
func TestParallelEngineProbeForcesSequential(t *testing.T) {
	const n, shards = 1500, 3
	type obs struct {
		now       float64
		completed int
		backlog   int
		done      bool
	}
	run := func(workers int) ([]obs, []byte) {
		var seen []obs
		probe := engine.ProbeFunc(func(s engine.Snapshot) {
			seen = append(seen, obs{now: s.Now, completed: s.Completed, backlog: s.Backlog, done: s.Done})
		})
		stream, err := workload.NewStream(skewedConfig(40), n, 31)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Shards: shards, P: 8, Policy: wdeq(t), Router: NewRoundRobin(),
			Workers: workers, Opts: engine.Options{Probe: probe},
		}, stream)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return seen, blob
	}
	seqObs, seqBlob := run(0)
	parObs, parBlob := run(4)
	if len(seqObs) == 0 {
		t.Fatal("engine probe never fired")
	}
	if len(seqObs) != len(parObs) {
		t.Fatalf("probe fired %d times with workers, %d sequentially", len(parObs), len(seqObs))
	}
	for i := range seqObs {
		if seqObs[i] != parObs[i] {
			t.Fatalf("probe observation %d: %+v with workers vs %+v sequential", i, parObs[i], seqObs[i])
		}
	}
	if string(seqBlob) != string(parBlob) {
		t.Fatal("results differ between Workers=4 (probe fallback) and sequential run")
	}
}

// Negative worker counts are a configuration error, not a silent default.
func TestParallelNegativeWorkersRejected(t *testing.T) {
	stream := sliceStream(boundaryArrivals(8))
	_, err := Run(Config{Shards: 2, P: 8, Policy: wdeq(t), Workers: -1}, stream)
	if err == nil {
		t.Fatal("Workers=-1 accepted")
	}
}
