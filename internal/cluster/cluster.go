// Package cluster is the virtual-time fleet layer above the engine kernel:
// one coordinator owns N resumable steppers (one per shard) and ONE global
// arrival stream, and dispatches each arrival at its release time to a shard
// chosen by a pluggable Router. This is the layer where shard count becomes
// a scheduling variable instead of a parallelism knob — the engine's
// independent-streams drivers (engine.RunShards*) answer "how fast can N
// decoupled schedulers run", this package answers "how should arriving tasks
// be routed to schedulers, and what does the routing policy cost".
//
// The coordinator advances the fleet in global event order: before an
// arrival is routed, every shard has processed every event up to the
// arrival's release, so the Router observes exact live backlog and
// allocation snapshots, not stale polls. That sequencing is what makes a
// cluster run byte-deterministic — same stream, same router, same seed,
// same report, at any GOMAXPROCS.
//
// Determinism does not require a single goroutine, only a single ORDER.
// Routing is the sole cross-shard interaction, so between two routing
// decisions every shard's events are independent of every other shard's:
// the coordinator may advance shards concurrently through the lookahead
// window bounded by the next dispatch time (conservative parallel
// discrete-event simulation) and synchronize only where the router needs an
// exact fleet snapshot. Config.Workers selects that mode; the results —
// dispatch sequence, merged LoadResult, shared-sink order, fleet-probe
// observations — are bit-identical to the sequential coordinator's at any
// worker count, which the test suite asserts.
package cluster

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/workload"
)

// batchSize bounds how many arrivals a parallel coordinator pre-routes
// between barriers when the router never reads fleet state (StateFreeRouter):
// larger batches amortize the barrier, while the bound keeps the coordinator's
// batch scratch O(1) in the stream length. The value is fixed — it must not
// influence results (and tests pin that it does not), only wall-clock time.
const batchSize = 512

// Config parameterizes a cluster run.
type Config struct {
	// Shards is the number of scheduler shards (engine steppers).
	Shards int
	// P is the per-shard platform capacity.
	P float64
	// Policy is the per-shard scheduling policy. Bundled policies are
	// stateless values; the coordinator clones per-shard state where a
	// policy carries any (engine.Runner does this), so one value may be
	// shared across shards even with Workers > 1.
	Policy engine.Policy
	// Router picks the destination shard of each arrival; nil defaults to
	// round-robin.
	Router Router
	// Opts are the per-shard engine options (speedup model, event bounds),
	// applied uniformly to every shard. A non-nil Opts.Probe observes every
	// shard's engine-level rest states interleaved on the global timeline;
	// that interleave is inherently sequential, so setting it forces the
	// sequential coordinator regardless of Workers (the output stays
	// byte-identical either way, which is the point).
	Opts engine.Options
	// Workers selects the coordinator's execution mode. 0 or 1 advances
	// shards on the coordinator goroutine in global event order. Workers >= 2
	// advances shards concurrently on that many pool workers between routing
	// decisions — bounded by the next dispatch time, the conservative
	// lookahead window — and is capped at Shards. Every observable output is
	// byte-identical across all Workers settings; the knob trades goroutines
	// for wall-clock time only.
	Workers int
	// Speculate switches the parallel coordinator (Workers >= 2) from
	// conservative to optimistic execution: shards advance past the next
	// dispatch horizon on checkpoints instead of parking at the barrier, and
	// only the shard the router actually feeds is rolled back to its last
	// pre-release checkpoint (see runSpeculative). For state-reading routers
	// — whose conservative mode pays a full-fleet barrier per arrival — this
	// is the wall-clock lever; for state-free routers the batched mode is
	// usually already barrier-cheap. Output stays byte-identical to the
	// sequential coordinator, like every other mode; the misprediction cost
	// is reported in LoadResult.Rollbacks/WastedEvents. Ignored when Workers
	// < 2 (sequential execution is already exact), and a run with
	// Opts.TraceDecisions falls back to the conservative modes (decision
	// traces cannot be checkpointed).
	Speculate bool
	// StaleRouting opts a state-reading router into window-stale dispatch,
	// the stale-batched mode (see stale.go and the DESIGN.md section of the
	// same name): the router's fleet view is published once per dispatch
	// window of up to batchSize arrivals — the state every shard reached at
	// the last window boundary, evolved only by the coordinator's own
	// in-window dispatch counts — instead of being re-synchronized per
	// dispatch. The view is a pure function of the stream and the window
	// size, never of worker interleaving, so output stays byte-identical at
	// every Workers setting (including 0 and 1, which run the same windowed
	// algorithm serially). It is NOT the exact-view schedule: routing
	// decisions, and therefore results, differ deterministically from the
	// sequential coordinator's. Requires a router declaring the
	// WindowStaleRouter capability (least-backlog, po2); a state-free
	// router ignores the flag (batched dispatch never reads the view), any
	// other router is rejected. Takes precedence over Speculate and is
	// incompatible with Opts.Probe (whose global event interleave needs the
	// sequential coordinator).
	StaleRouting bool
	// Prefetch overlaps arrival generation or trace decoding with shard
	// execution: a single producer goroutine fills fixed-size buffers — one
	// dispatch window each — while the coordinator drains the previously
	// handed-off one (see workload.Prefetch). Handoff happens at fixed
	// batch boundaries, so the coordinator observes exactly the stream's
	// sequence and every mode's output is unchanged; the knob trades one
	// goroutine for overlap, nothing more.
	Prefetch bool
	// Sink, when non-nil, observes every completed task of the whole fleet
	// in a deterministic global order: ascending completion time, ties by
	// shard index, exactly the order the sequential coordinator emits. With
	// Workers >= 2 completions are buffered per shard during a window and
	// replayed into Sink in that same order at the next barrier.
	Sink engine.MetricSink
	// Probe, when non-nil, observes the fleet at dispatch time: it is handed
	// the same exact per-shard snapshots the Router just saw (after the
	// dispatch was counted), so probe output and routing decisions describe
	// the same instant. A final observation fires after the fleet drains,
	// with every shard's terminal counters. Fleet probing synchronizes the
	// fleet at every dispatch, so with Workers >= 2 it keeps the per-dispatch
	// barrier even under a StateFreeRouter. See Probe.
	Probe Probe
	// ProbeEveryDispatches fires the probe every k-th dispatch (k > 0); 0
	// observes every dispatch. The snapshots are assembled for the router
	// anyway, so thinning only saves the probe body, not the scan.
	ProbeEveryDispatches int
}

// Probe observes the fleet's per-shard state on the coordinator's virtual
// timeline — the cluster half of the observability plane (internal/obs
// exposes implementations as labeled Prometheus gauge families).
//
// ObserveFleet is called from the coordinator goroutine; now is the release
// time of the arrival just dispatched (or the fleet's final virtual time on
// the closing observation). The shards slice is the coordinator's scratch:
// implementations must read it synchronously and must not retain it.
type Probe interface {
	ObserveFleet(now float64, shards []ShardState)
}

// coordinator is the per-run state shared by the sequential and parallel
// execution modes: the shard steppers and their result/sink columns, the
// validated one-arrival lookahead into the global stream, and the scratch
// the router and probe observe.
type coordinator struct {
	cfg    Config
	n      int
	router Router
	stream engine.ArrivalStream

	runners    []*engine.Runner
	results    []*engine.Result
	aggs       []*engine.AggregateSink
	sketches   []*engine.SketchSink
	steppers   []*engine.Stepper
	states     []ShardState
	dispatched []int
	routed     int

	// One look-ahead into the global stream, with the same boundary
	// validation the engine applies.
	count       int
	lastRelease float64

	// Sequential mode: the index-min heap over shard next-event times.
	h shardHeap

	// Parallel modes: the worker pool, and the per-shard completion buffers
	// with their merge scratch (conservative modes only buffer when
	// cfg.Sink is set; the speculative mode always buffers, since rollback
	// must be able to discard rows).
	pool      *pool
	bufs      []*sinkBuffer
	flushHead []int

	// Speculative mode: per-shard checkpoint state and the fleet-wide
	// misprediction counters (see speculate.go).
	spec      []*specShard
	rollbacks int
	wasted    int

	// Stale-batched mode: window views published so far (see stale.go).
	staleViews int
}

// Run dispatches the global arrival stream across the fleet and merges the
// per-shard outcomes into the same LoadResult schema the independent-streams
// drivers report: per-shard results in Shards, deterministic aggregate and
// sketch merges, flow quantiles flagged FlowApprox, and the imbalance
// fields (MinShardCompleted/MaxShardCompleted/PeakBacklog) that make router
// quality visible without a profiler.
//
// Arrivals are validated at the coordinator boundary (well-formed,
// non-decreasing releases) and fed to the routed shard at their release
// time; per-task rows are never retained, so a run's memory is
// O(shards · (alive tasks + sink size)) regardless of the stream length.
//
// With cfg.Workers >= 2 the shards advance concurrently between routing
// decisions (see Config.Workers); the returned result and every configured
// observer output are byte-identical to a sequential run of the same
// configuration.
func Run(cfg Config, stream engine.ArrivalStream) (*engine.LoadResult, error) {
	if stream == nil {
		return nil, fmt.Errorf("cluster: nil arrival stream")
	}
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("cluster: negative worker count %d", cfg.Workers)
	}
	router := cfg.Router
	if router == nil {
		router = NewRoundRobin()
	}
	// Window-stale dispatch is a router capability, not just a flag: the
	// router must have declared that boundary views are acceptable input.
	stale := false
	if cfg.StaleRouting {
		if cfg.Opts.Probe != nil {
			return nil, fmt.Errorf("cluster: StaleRouting is incompatible with an engine probe (Opts.Probe): the probe interleaves every shard's events on one timeline, stale dispatch advances shards through private windows; drop one")
		}
		if ws, ok := router.(WindowStaleRouter); ok && ws.WindowStale() {
			stale = true
		} else if sf, ok := router.(StateFreeRouter); !ok || !sf.StateFree() {
			return nil, fmt.Errorf("cluster: router %q reads exact fleet state and declares no WindowStaleRouter capability; StaleRouting needs a window-stale router (least-backlog, po2) or a state-free one", router.Name())
		}
		// A state-free router never reads the view at all: the batched mode
		// is already exact and barrier-free, so the flag is a no-op there.
	}
	if cfg.Prefetch {
		// The prefetcher is a pure pipeline stage over the global stream —
		// same arrivals, same order — so it composes with every mode below.
		pf := workload.NewPrefetch(stream, batchSize)
		defer pf.Stop()
		stream = pf
	}

	c := &coordinator{cfg: cfg, n: cfg.Shards, router: router, stream: stream}

	workers := cfg.Workers
	if workers > c.n {
		workers = c.n
	}
	// Engine-level probes interleave every shard's rest states on one
	// timeline — inherently sequential, so they pin the sequential mode.
	parallel := workers >= 2 && cfg.Opts.Probe == nil
	// Optimistic execution rides on Stepper.Snapshot, which cannot capture a
	// decision trace, so traced runs stay on the conservative modes; the
	// stale-batched mode needs no checkpoints and takes precedence.
	speculative := parallel && cfg.Speculate && !cfg.Opts.TraceDecisions && !stale

	n := c.n
	c.runners = make([]*engine.Runner, n)
	c.results = make([]*engine.Result, n)
	c.aggs = make([]*engine.AggregateSink, n)
	c.sketches = make([]*engine.SketchSink, n)
	c.steppers = make([]*engine.Stepper, n)
	c.states = make([]ShardState, n)
	c.dispatched = make([]int, n)
	if (parallel || stale) && (cfg.Sink != nil || speculative) {
		c.bufs = make([]*sinkBuffer, n)
		c.flushHead = make([]int, n)
	}
	for i := 0; i < n; i++ {
		c.states[i].Shard = i
		c.runners[i] = engine.NewRunner()
		c.results[i] = &engine.Result{}
		c.aggs[i] = engine.NewAggregateSink()
		c.sketches[i] = engine.NewSketchSink(0)
		var sink engine.MetricSink
		if speculative {
			// Speculated completions must be discardable on rollback, so the
			// stepper feeds ONLY the window buffer; the aggregate and sketch
			// observe committed rows at flush time (flushSpec), never
			// speculated ones.
			c.bufs[i] = &sinkBuffer{}
			sink = c.bufs[i]
		} else {
			shared := cfg.Sink
			if c.bufs != nil {
				c.bufs[i] = &sinkBuffer{}
				shared = c.bufs[i]
			}
			sink = engine.MultiSink(c.aggs[i], c.sketches[i], shared)
		}
		st, err := c.runners[i].StartFeed(c.results[i], cfg.P, cfg.Policy, sink, cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		c.steppers[i] = st
	}

	if stale {
		// Stale-batched runs the same windowed algorithm at every worker
		// count — the window schedule is fixed by the stream, workers only
		// add hands — so even 0 or 1 workers go through runStaleBatched
		// (serially, without a pool) rather than falling back to the
		// sequential exact-view coordinator, whose routing would differ.
		if parallel {
			c.pool = newPool(workers, n)
			defer c.pool.close()
		}
		return c.runStaleBatched()
	}
	if !parallel {
		return c.runSequential()
	}
	c.pool = newPool(workers, n)
	defer c.pool.close()
	if speculative {
		return c.runSpeculative()
	}
	// A router that never reads fleet state dispatches without a barrier, so
	// whole batches of arrivals advance concurrently; a fleet probe wants an
	// exact snapshot per dispatch and keeps the per-dispatch window.
	if sf, ok := router.(StateFreeRouter); ok && sf.StateFree() && cfg.Probe == nil {
		return c.runBatched()
	}
	return c.runWindowed()
}

// pull advances the global one-arrival lookahead, validating each arrival
// and the release ordering at the coordinator boundary with errors labeled
// by stream position.
func (c *coordinator) pull() (engine.Arrival, bool, error) {
	a, ok, err := c.stream.Next()
	if err != nil {
		return engine.Arrival{}, false, fmt.Errorf("cluster: arrival %d: %w", c.count, err)
	}
	if !ok {
		return engine.Arrival{}, false, nil
	}
	if err := a.Validate(); err != nil {
		return engine.Arrival{}, false, fmt.Errorf("cluster: arrival %d: %w", c.count, err)
	}
	if c.count > 0 && a.Release < c.lastRelease {
		return engine.Arrival{}, false, fmt.Errorf(
			"cluster: arrival %d: release %g precedes %g — the global stream must be non-decreasing in release time",
			c.count, a.Release, c.lastRelease)
	}
	c.lastRelease = a.Release
	c.count++
	return a, true, nil
}

// fillStates snapshots every shard into the router/probe scratch.
func (c *coordinator) fillStates() {
	for i, st := range c.steppers {
		c.states[i] = ShardState{
			Shard:      i,
			Now:        st.Now(),
			Backlog:    st.Backlog(),
			Allocated:  st.Allocated(),
			Completed:  st.Completed(),
			Dispatched: c.dispatched[i],
		}
	}
}

// route asks the router for the arrival's destination and range-checks it.
func (c *coordinator) route(a engine.Arrival) (int, error) {
	idx := c.router.Route(a, c.states)
	if idx < 0 || idx >= c.n {
		return 0, fmt.Errorf("cluster: router %q routed arrival %d to shard %d of %d", c.router.Name(), c.count-1, idx, c.n)
	}
	return idx, nil
}

// observeDispatch fires the fleet probe for the dispatch just performed,
// honoring the thinning configuration. The probe sees exactly what the
// router saw, plus the dispatch it just caused — the fed arrival itself is
// not admitted until the shard's next event, so Backlog is still the routed
// view.
func (c *coordinator) observeDispatch(idx int, release float64) {
	if c.cfg.Probe != nil && (c.cfg.ProbeEveryDispatches <= 1 || c.routed%c.cfg.ProbeEveryDispatches == 0) {
		c.states[idx].Dispatched = c.dispatched[idx]
		c.cfg.Probe.ObserveFleet(release, c.states)
	}
}

// runSequential advances the fleet on the coordinator goroutine in global
// event order, ordering the shards' next events on the index-min heap —
// O(log shards) per event instead of the former linear scan per event.
func (c *coordinator) runSequential() (*engine.LoadResult, error) {
	c.h.init(c.n)
	// advance processes every shard event at or before horizon in global
	// (time, shard index) order; the heap keys are refreshed only for the
	// stepped shard, the single shard whose state changed.
	advance := func(horizon float64) error {
		for {
			s, t := c.h.min()
			if math.IsInf(t, 1) || t > horizon {
				return nil
			}
			if _, err := c.steppers[s].Step(); err != nil {
				return fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			c.h.update(s, c.steppers[s].NextEventTime())
		}
	}

	next, ok, err := c.pull()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: empty arrival stream")
	}
	for ok {
		// Bring every shard up to the arrival's release time: completions
		// (and capacity steps) due before it are processed first, so the
		// router's snapshots are exact at dispatch time. Shard events at the
		// same instant as the arrival retire before routing — a router
		// should see a queue that just drained as drained.
		if err := advance(next.Release); err != nil {
			return nil, err
		}
		c.fillStates()
		idx, err := c.route(next)
		if err != nil {
			return nil, err
		}
		if err := c.steppers[idx].Feed(next); err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", idx, err)
		}
		c.h.update(idx, c.steppers[idx].NextEventTime())
		c.dispatched[idx]++
		c.routed++
		c.observeDispatch(idx, next.Release)
		next, ok, err = c.pull()
		if err != nil {
			return nil, err
		}
	}

	// The global stream is over: close every feed and drain the fleet in
	// the same global event order.
	for _, st := range c.steppers {
		st.CloseFeed()
	}
	if err := advance(math.Inf(1)); err != nil {
		return nil, err
	}
	return c.finish()
}

// runWindowed is the conservative parallel mode for routers that read fleet
// state: between consecutive dispatches the shards advance concurrently
// through the window bounded by the next arrival's release, then the fleet
// synchronizes so the router (and probe) observe exact snapshots — the same
// snapshots the sequential interleave produces, because within a window no
// shard's events depend on another shard's.
func (c *coordinator) runWindowed() (*engine.LoadResult, error) {
	var horizon float64
	work := func(s int) error {
		if _, err := c.steppers[s].StepUntil(horizon); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		return nil
	}
	// The single-dispatch window: buffered completions all fall in one
	// global window, so the merge key degenerates to (time, shard index).
	release := make([]float64, 1)
	advance := func(h float64) error {
		soonest := math.Inf(1)
		for _, st := range c.steppers {
			if t := st.NextEventTime(); t < soonest {
				soonest = t
			}
		}
		// No shard has an event in the window — common under light backlog,
		// where the next event IS the arrival. Skip the barrier entirely.
		if math.IsInf(soonest, 1) || soonest > h {
			return nil
		}
		horizon = h
		release[0] = h
		if c.bufs != nil {
			for _, b := range c.bufs {
				b.reset(release)
			}
		}
		if err := c.pool.run(work); err != nil {
			return err
		}
		if c.bufs != nil {
			flushBuffers(c.bufs, c.cfg.Sink, c.flushHead)
		}
		return nil
	}

	next, ok, err := c.pull()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: empty arrival stream")
	}
	for ok {
		if err := advance(next.Release); err != nil {
			return nil, err
		}
		c.fillStates()
		idx, err := c.route(next)
		if err != nil {
			return nil, err
		}
		if err := c.steppers[idx].Feed(next); err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", idx, err)
		}
		c.dispatched[idx]++
		c.routed++
		c.observeDispatch(idx, next.Release)
		next, ok, err = c.pull()
		if err != nil {
			return nil, err
		}
	}

	for _, st := range c.steppers {
		st.CloseFeed()
	}
	if err := advance(math.Inf(1)); err != nil {
		return nil, err
	}
	return c.finish()
}

// shardBatch is one shard's dispatch subsequence of the current batch.
type shardBatch struct {
	arrivals []int32 // indices into the batch's arrival slice
}

// newFeedScratch allocates the per-shard arrival scratch feedWindow batches
// into, or nil when a shared sink forces the per-arrival interleave.
func (c *coordinator) newFeedScratch() [][]engine.Arrival {
	if c.bufs != nil {
		return nil
	}
	return make([][]engine.Arrival, c.n)
}

// feedWindow advances shard s through one dispatch window: its subsequence
// of the batch is fed in release order, then events drain up to the window
// horizon. Without a shared sink the whole subsequence goes through
// Stepper.FeedBatch — one fused advance-and-feed call per shard per window,
// which is where the batched modes' per-arrival overhead goes away; with
// one, feeds interleave an arrival at a time so the sink buffer's window
// floor can track each dispatch (see sinkBuffer). The two paths are
// bit-identical by FeedBatch's contract.
func (c *coordinator) feedWindow(s int, arrs []engine.Arrival, idxs []int32, scratch [][]engine.Arrival, horizon float64) error {
	st := c.steppers[s]
	if c.bufs == nil {
		if len(idxs) > 0 {
			batch := scratch[s][:0]
			for _, gi := range idxs {
				batch = append(batch, arrs[gi])
			}
			scratch[s] = batch
			if _, err := st.FeedBatch(batch); err != nil {
				return fmt.Errorf("cluster: shard %d: %w", s, err)
			}
		}
	} else {
		buf := c.bufs[s]
		for _, gi := range idxs {
			a := arrs[gi]
			if _, err := st.StepUntil(a.Release); err != nil {
				return fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			if err := st.Feed(a); err != nil {
				return fmt.Errorf("cluster: shard %d: %w", s, err)
			}
			buf.floor = int(gi) + 1
		}
	}
	if _, err := st.StepUntil(horizon); err != nil {
		return fmt.Errorf("cluster: shard %d: %w", s, err)
	}
	return nil
}

// runBatched is the wide-window parallel mode for state-free routers: the
// coordinator pre-routes up to batchSize arrivals (the router never looks at
// the fleet, so routing needs no synchronization), hands every shard its
// dispatch subsequence, and lets the workers interleave feeds with event
// processing privately per shard — one barrier per batch instead of one per
// dispatch. Per-shard trajectories are identical to the sequential
// coordinator's because a stepper's events depend only on its own feeds and
// their release times; the shared sink's global order is reconstructed from
// the per-row (window, time, shard) key (see sinkBuffer).
func (c *coordinator) runBatched() (*engine.LoadResult, error) {
	arrs := make([]engine.Arrival, 0, batchSize)
	releases := make([]float64, 0, batchSize)
	perShard := make([]shardBatch, c.n)
	scratch := c.newFeedScratch()
	var horizon float64

	work := func(s int) error {
		return c.feedWindow(s, arrs, perShard[s].arrivals, scratch, horizon)
	}

	next, ok, err := c.pull()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: empty arrival stream")
	}
	for ok {
		arrs = arrs[:0]
		releases = releases[:0]
		for i := range perShard {
			perShard[i].arrivals = perShard[i].arrivals[:0]
		}
		for ok && len(arrs) < batchSize {
			// The router is state-free: c.states carries only the shard
			// indices, and the contract is that Route reads nothing else.
			idx, err := c.route(next)
			if err != nil {
				return nil, err
			}
			arrs = append(arrs, next)
			releases = append(releases, next.Release)
			perShard[idx].arrivals = append(perShard[idx].arrivals, int32(len(arrs)-1))
			c.dispatched[idx]++
			c.routed++
			next, ok, err = c.pull()
			if err != nil {
				return nil, err
			}
		}
		horizon = releases[len(releases)-1]
		if c.bufs != nil {
			for _, b := range c.bufs {
				b.reset(releases)
			}
		}
		if err := c.pool.run(work); err != nil {
			return nil, err
		}
		if c.bufs != nil {
			flushBuffers(c.bufs, c.cfg.Sink, c.flushHead)
		}
	}

	for _, st := range c.steppers {
		st.CloseFeed()
	}
	// Drain every shard to its last event in parallel; drain rows carry
	// window 0 over an empty release table, i.e. plain (time, shard) order,
	// which is exactly the sequential drain's interleave.
	if c.bufs != nil {
		for _, b := range c.bufs {
			b.reset(nil)
		}
	}
	drain := func(s int) error {
		if _, err := c.steppers[s].StepUntil(math.Inf(1)); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		return nil
	}
	if err := c.pool.run(drain); err != nil {
		return nil, err
	}
	if c.bufs != nil {
		flushBuffers(c.bufs, c.cfg.Sink, c.flushHead)
	}
	return c.finish()
}

// finish completes the drained fleet: the final Step every shard needs to
// observe its closed feed, Finish validation, the closing probe
// observation, and the deterministic shard merge.
func (c *coordinator) finish() (*engine.LoadResult, error) {
	runs := make([]engine.ShardRun, c.n)
	for i, st := range c.steppers {
		// A shard that never received an arrival still needs its final Step
		// to observe the closed feed and finish.
		if !st.Done() {
			if _, err := st.Step(); err != nil {
				return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
			}
		}
		if err := st.Finish(); err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		runs[i] = engine.ShardRun{Shard: i, Result: c.results[i]}
	}
	if c.cfg.Probe != nil {
		// Closing observation: every shard's terminal counters at the
		// fleet's final virtual time, so samplers always capture the
		// drained endpoint whatever the dispatch thinning.
		final := 0.0
		c.fillStates()
		for i := range c.states {
			if c.results[i].Makespan > final {
				final = c.results[i].Makespan
			}
		}
		c.cfg.Probe.ObserveFleet(final, c.states)
	}
	res, err := engine.MergeShards(c.cfg.P, c.cfg.Policy.Name(), runs, c.aggs, c.sketches)
	if err != nil {
		return nil, err
	}
	return res, nil
}
