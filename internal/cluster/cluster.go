// Package cluster is the virtual-time fleet layer above the engine kernel:
// one coordinator owns N resumable steppers (one per shard) and ONE global
// arrival stream, and dispatches each arrival at its release time to a shard
// chosen by a pluggable Router. This is the layer where shard count becomes
// a scheduling variable instead of a parallelism knob — the engine's
// independent-streams drivers (engine.RunShards*) answer "how fast can N
// decoupled schedulers run", this package answers "how should arriving tasks
// be routed to schedulers, and what does the routing policy cost".
//
// The coordinator is strictly sequential and advances the fleet in global
// event order: before an arrival is routed, every shard has processed every
// event up to the arrival's release, so the Router observes exact live
// backlog and allocation snapshots, not stale polls. That sequencing is also
// what makes a cluster run byte-deterministic — same stream, same router,
// same seed, same report, at any GOMAXPROCS.
package cluster

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/engine"
)

// Config parameterizes a cluster run.
type Config struct {
	// Shards is the number of scheduler shards (engine steppers).
	Shards int
	// P is the per-shard platform capacity.
	P float64
	// Policy is the per-shard scheduling policy (shared; bundled policies
	// are stateless values, and the coordinator is sequential anyway).
	Policy engine.Policy
	// Router picks the destination shard of each arrival; nil defaults to
	// round-robin.
	Router Router
	// Opts are the per-shard engine options (speedup model, event bounds),
	// applied uniformly to every shard.
	Opts engine.Options
	// Sink, when non-nil, observes every completed task of the whole fleet.
	// The coordinator is sequential, so one shared sink sees completions in
	// a deterministic order (global event order, shards stepped lowest
	// index first on ties).
	Sink engine.MetricSink
	// Probe, when non-nil, observes the fleet at dispatch time: it is handed
	// the same exact per-shard snapshots the Router just saw (after the
	// dispatch was counted), so probe output and routing decisions describe
	// the same instant. A final observation fires after the fleet drains,
	// with every shard's terminal counters. See Probe.
	Probe Probe
	// ProbeEveryDispatches fires the probe every k-th dispatch (k > 0); 0
	// observes every dispatch. The snapshots are assembled for the router
	// anyway, so thinning only saves the probe body, not the scan.
	ProbeEveryDispatches int
}

// Probe observes the fleet's per-shard state on the coordinator's virtual
// timeline — the cluster half of the observability plane (internal/obs
// exposes implementations as labeled Prometheus gauge families).
//
// ObserveFleet is called from the coordinator goroutine; now is the release
// time of the arrival just dispatched (or the fleet's final virtual time on
// the closing observation). The shards slice is the coordinator's scratch:
// implementations must read it synchronously and must not retain it.
type Probe interface {
	ObserveFleet(now float64, shards []ShardState)
}

// Run dispatches the global arrival stream across the fleet and merges the
// per-shard outcomes into the same LoadResult schema the independent-streams
// drivers report: per-shard results in Shards, deterministic aggregate and
// sketch merges, flow quantiles flagged FlowApprox, and the imbalance
// fields (MinShardCompleted/MaxShardCompleted/PeakBacklog) that make router
// quality visible without a profiler.
//
// Arrivals are validated at the coordinator boundary (well-formed,
// non-decreasing releases) and fed to the routed shard at their release
// time; per-task rows are never retained, so a run's memory is
// O(shards · (alive tasks + sink size)) regardless of the stream length.
func Run(cfg Config, stream engine.ArrivalStream) (*engine.LoadResult, error) {
	if stream == nil {
		return nil, fmt.Errorf("cluster: nil arrival stream")
	}
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	router := cfg.Router
	if router == nil {
		router = NewRoundRobin()
	}

	n := cfg.Shards
	runners := make([]*engine.Runner, n)
	results := make([]*engine.Result, n)
	aggs := make([]*engine.AggregateSink, n)
	sketches := make([]*engine.SketchSink, n)
	steppers := make([]*engine.Stepper, n)
	states := make([]ShardState, n)
	dispatched := make([]int, n)
	for i := 0; i < n; i++ {
		runners[i] = engine.NewRunner()
		results[i] = &engine.Result{}
		aggs[i] = engine.NewAggregateSink()
		sketches[i] = engine.NewSketchSink(0)
		st, err := runners[i].StartFeed(results[i], cfg.P, cfg.Policy, engine.MultiSink(aggs[i], sketches[i], cfg.Sink), cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		steppers[i] = st
	}

	// One look-ahead into the global stream, with the same boundary
	// validation the engine applies: every arrival well-formed, releases
	// non-decreasing, errors labeled with the stream position.
	count := 0
	lastRelease := 0.0
	pull := func() (engine.Arrival, bool, error) {
		a, ok, err := stream.Next()
		if err != nil {
			return engine.Arrival{}, false, fmt.Errorf("cluster: arrival %d: %w", count, err)
		}
		if !ok {
			return engine.Arrival{}, false, nil
		}
		if err := a.Validate(); err != nil {
			return engine.Arrival{}, false, fmt.Errorf("cluster: arrival %d: %w", count, err)
		}
		if count > 0 && a.Release < lastRelease {
			return engine.Arrival{}, false, fmt.Errorf(
				"cluster: arrival %d: release %g precedes %g — the global stream must be non-decreasing in release time",
				count, a.Release, lastRelease)
		}
		lastRelease = a.Release
		count++
		return a, true, nil
	}

	// step advances the earliest-next-event shard by one event; ties break
	// toward the lowest shard index so the interleave is deterministic.
	step := func(horizon float64) error {
		for {
			best, bestT := -1, math.Inf(1)
			for i, st := range steppers {
				if t := st.NextEventTime(); t < bestT {
					best, bestT = i, t
				}
			}
			if best < 0 || bestT > horizon {
				return nil
			}
			if _, err := steppers[best].Step(); err != nil {
				return fmt.Errorf("cluster: shard %d: %w", best, err)
			}
		}
	}

	next, ok, err := pull()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: empty arrival stream")
	}
	routed := 0
	for ok {
		// Bring every shard up to the arrival's release time: completions
		// (and capacity steps) due before it are processed first, so the
		// router's snapshots are exact at dispatch time. Shard events at the
		// same instant as the arrival retire before routing — a router
		// should see a queue that just drained as drained.
		if err := step(next.Release); err != nil {
			return nil, err
		}
		for i, st := range steppers {
			states[i] = ShardState{
				Shard:      i,
				Now:        st.Now(),
				Backlog:    st.Backlog(),
				Allocated:  st.Allocated(),
				Completed:  st.Completed(),
				Dispatched: dispatched[i],
			}
		}
		idx := router.Route(next, states)
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("cluster: router %q routed arrival %d to shard %d of %d", router.Name(), count-1, idx, n)
		}
		if err := steppers[idx].Feed(next); err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", idx, err)
		}
		dispatched[idx]++
		routed++
		if cfg.Probe != nil && (cfg.ProbeEveryDispatches <= 1 || routed%cfg.ProbeEveryDispatches == 0) {
			// The probe sees exactly what the router saw, plus the dispatch
			// it just caused — the fed arrival itself is not admitted until
			// the shard's next event, so Backlog is still the routed view.
			states[idx].Dispatched = dispatched[idx]
			cfg.Probe.ObserveFleet(next.Release, states)
		}
		next, ok, err = pull()
		if err != nil {
			return nil, err
		}
	}

	// The global stream is over: close every feed and drain the fleet in
	// the same global event order.
	for _, st := range steppers {
		st.CloseFeed()
	}
	if err := step(math.Inf(1)); err != nil {
		return nil, err
	}
	runs := make([]engine.ShardRun, n)
	for i, st := range steppers {
		// A shard that never received an arrival still needs its final Step
		// to observe the closed feed and finish.
		if !st.Done() {
			if _, err := st.Step(); err != nil {
				return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
			}
		}
		if err := st.Finish(); err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		runs[i] = engine.ShardRun{Shard: i, Result: results[i]}
	}
	if cfg.Probe != nil {
		// Closing observation: every shard's terminal counters at the
		// fleet's final virtual time, so samplers always capture the
		// drained endpoint whatever the dispatch thinning.
		final := 0.0
		for i, st := range steppers {
			states[i] = ShardState{
				Shard:      i,
				Now:        st.Now(),
				Backlog:    st.Backlog(),
				Allocated:  st.Allocated(),
				Completed:  st.Completed(),
				Dispatched: dispatched[i],
			}
			if results[i].Makespan > final {
				final = results[i].Makespan
			}
		}
		cfg.Probe.ObserveFleet(final, states)
	}
	res, err := engine.MergeShards(cfg.P, cfg.Policy.Name(), runs, aggs, sketches)
	if err != nil {
		return nil, err
	}
	return res, nil
}
