package cluster

import (
	"fmt"
	"testing"

	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

// The speculative tentpole contract, mirroring the conservative one: an
// optimistic run is byte-identical to the sequential coordinator at ANY
// worker count — dispatch sequence, merged LoadResult, shared-sink order,
// fleet-probe trace — for every bundled router (state-reading AND
// state-free, since Speculate takes precedence over the batched mode), with
// and without a fleet probe, with workers up to 2x the shard count.
func TestSpeculativeMatchesSequentialByteForByte(t *testing.T) {
	const n, shards, seed = 3000, 4, 7
	newStream := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(60.8), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	newRouter := func(name string) Router {
		r, err := RouterByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, router := range RouterNames() {
		for _, withProbe := range []bool{false, true} {
			mode := "noprobe"
			if withProbe {
				mode = "probe"
			}
			t.Run(fmt.Sprintf("%s/%s", router, mode), func(t *testing.T) {
				base := Config{Shards: shards, P: 8, Policy: wdeq(t)}
				base.Router = newRouter(router)
				seq := captureRun(t, base, newStream(), withProbe)
				if len(seq.dispatch) != n {
					t.Fatalf("sequential run routed %d arrivals, want %d", len(seq.dispatch), n)
				}
				for _, workers := range []int{2, 3, shards, 2 * shards} {
					cfg := base
					cfg.Router = newRouter(router)
					cfg.Workers = workers
					cfg.Speculate = true
					par := captureRun(t, cfg, newStream(), withProbe)
					assertCapturesEqual(t, seq, par, fmt.Sprintf("speculate workers=%d", workers))
				}
			})
		}
	}
}

// The adversarial window-edge stream under forced rollbacks: simultaneous
// releases colliding with speculation horizons, zero-volume tasks completing
// exactly AT a pending release, equal-release runs crossing window
// boundaries (n far exceeds the largest window the controller can reach).
// State-reading routers must both reproduce the sequential run bit for bit
// AND actually mispredict — a run with zero rollbacks would mean the
// adversarial case went untested.
func TestSpeculativeForcedRollbacks(t *testing.T) {
	const n, shards = 6 * specBatchMax, 3
	for _, router := range []string{"least-backlog", "po2"} {
		t.Run(router, func(t *testing.T) {
			newRouter := func() Router {
				r, err := RouterByName(router, 5)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			base := Config{Shards: shards, P: 8, Policy: wdeq(t), Router: newRouter()}
			seq := captureRun(t, base, sliceStream(boundaryArrivals(n)), true)
			for _, workers := range []int{2, shards} {
				cfg := base
				cfg.Router = newRouter()
				cfg.Workers = workers
				cfg.Speculate = true
				par := captureRun(t, cfg, sliceStream(boundaryArrivals(n)), true)
				assertCapturesEqual(t, seq, par, fmt.Sprintf("speculate workers=%d", workers))
			}

			// Inspect the misprediction counters directly (they are excluded
			// from the JSON blob precisely so the comparison above can pass).
			res, err := Run(Config{
				Shards: shards, P: 8, Policy: wdeq(t), Router: newRouter(),
				Workers: shards, Speculate: true,
			}, sliceStream(boundaryArrivals(n)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Rollbacks == 0 {
				t.Error("adversarial stream produced no rollbacks; the rollback path went unexercised")
			}
			// Waste counts discarded policy invocations (the unit of
			// Result.Events); a rollback that only discarded zero-invocation
			// events (e.g. a zero-volume admission that emptied the shard)
			// wastes 0, so waste is positive overall but not per rollback.
			if res.WastedEvents <= 0 {
				t.Errorf("WastedEvents = %d with %d rollbacks; want some discarded work", res.WastedEvents, res.Rollbacks)
			}
		})
	}
}

// The adaptive window controller: a rollback-heavy stream drives the depth
// down from specBatchInit, a rollback-free stream climbs it to the upper
// clamp, the trajectory never leaves [specBatchMin, specBatchMax], and the
// run stays byte-identical to the sequential coordinator at every controller
// state either trajectory visits.
func TestSpeculativeAdaptiveBatch(t *testing.T) {
	const shards = 3
	newCfg := func(spec bool) Config {
		cfg := Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog()}
		if spec {
			cfg.Workers = shards
			cfg.Speculate = true
		}
		return cfg
	}

	t.Run("backoff", func(t *testing.T) {
		stream := func() engine.ArrivalStream { return sliceStream(boundaryArrivals(6 * specBatchMax)) }
		seq := captureRun(t, newCfg(false), stream(), false)
		spec := captureRun(t, newCfg(true), stream(), false)
		assertCapturesEqual(t, seq, spec, "adaptive backoff")
		res, err := Run(newCfg(true), stream())
		if err != nil {
			t.Fatal(err)
		}
		if res.Rollbacks == 0 {
			t.Fatal("adversarial stream produced no rollbacks; the backoff path went unexercised")
		}
		if res.SpecBatchMin < specBatchMin || res.SpecBatchMax > specBatchMax {
			t.Fatalf("controller left its clamp: ran %d..%d, want within [%d, %d]",
				res.SpecBatchMin, res.SpecBatchMax, specBatchMin, specBatchMax)
		}
		if res.SpecBatchMin >= specBatchInit {
			t.Errorf("controller never backed off: min depth %d, started at %d", res.SpecBatchMin, specBatchInit)
		}
		if res.SpecBatchMin == res.SpecBatchMax {
			t.Errorf("depth never varied (stuck at %d)", res.SpecBatchMin)
		}
	})

	t.Run("climb", func(t *testing.T) {
		// Volumes far beyond what the fleet can finish mid-stream: no shard
		// ever has a completion between dispatches, so nothing speculates
		// past a pending release, no window rolls back, and the clean-window
		// raises walk the depth to the upper clamp.
		climb := func() []engine.Arrival {
			arrs := make([]engine.Arrival, 6000)
			for i := range arrs {
				arrs[i] = engine.Arrival{
					Task:    schedule.Task{Weight: 1, Volume: 1e6, Delta: 4},
					Release: float64(i) / 16,
					Tenant:  i % 4,
				}
			}
			return arrs
		}
		seq := captureRun(t, newCfg(false), sliceStream(climb()), false)
		spec := captureRun(t, newCfg(true), sliceStream(climb()), false)
		assertCapturesEqual(t, seq, spec, "adaptive climb")
		res, err := Run(newCfg(true), sliceStream(climb()))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rollbacks != 0 {
			t.Fatalf("completion-free stream rolled back %d times; the climb regime went unexercised", res.Rollbacks)
		}
		if res.SpecBatchLast != specBatchMax || res.SpecBatchMax != specBatchMax {
			t.Errorf("controller did not reach the upper clamp: ran %d..%d, final %d, want max %d",
				res.SpecBatchMin, res.SpecBatchMax, res.SpecBatchLast, specBatchMax)
		}
	})
}

// Sequential and conservative runs report zero misprediction cost, and a
// speculative run's counters never leak into the serialized report.
func TestSpeculativeCountersScoped(t *testing.T) {
	const n, shards = 800, 2
	seqRes, err := Run(Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog()},
		sliceStream(boundaryArrivals(n)))
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Rollbacks != 0 || seqRes.WastedEvents != 0 {
		t.Fatalf("sequential run reports rollbacks=%d wasted=%d, want 0/0", seqRes.Rollbacks, seqRes.WastedEvents)
	}
	if seqRes.SpecBatchMin != 0 || seqRes.SpecBatchMax != 0 || seqRes.SpecBatchLast != 0 {
		t.Fatalf("sequential run reports a speculation depth trajectory %d..%d/%d, want zeros",
			seqRes.SpecBatchMin, seqRes.SpecBatchMax, seqRes.SpecBatchLast)
	}
	winRes, err := Run(Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(), Workers: shards},
		sliceStream(boundaryArrivals(n)))
	if err != nil {
		t.Fatal(err)
	}
	if winRes.Rollbacks != 0 || winRes.WastedEvents != 0 {
		t.Fatalf("windowed run reports rollbacks=%d wasted=%d, want 0/0", winRes.Rollbacks, winRes.WastedEvents)
	}
}

// Speculate with Workers < 2 is the sequential coordinator (already exact,
// nothing to speculate), and Speculate + TraceDecisions falls back to the
// conservative parallel modes (decision traces cannot be checkpointed) —
// both must still match the sequential run exactly.
func TestSpeculativeFallbacks(t *testing.T) {
	const n, shards = 1200, 3
	newCfg := func() Config {
		return Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog()}
	}

	t.Run("workers=0", func(t *testing.T) {
		seq := captureRun(t, newCfg(), sliceStream(boundaryArrivals(n)), false)
		cfg := newCfg()
		cfg.Speculate = true
		spec := captureRun(t, cfg, sliceStream(boundaryArrivals(n)), false)
		assertCapturesEqual(t, seq, spec, "speculate workers=0")
	})

	t.Run("trace", func(t *testing.T) {
		base := newCfg()
		base.Opts = engine.Options{TraceDecisions: true}
		seq := captureRun(t, base, sliceStream(boundaryArrivals(n)), false)
		cfg := newCfg()
		cfg.Opts = engine.Options{TraceDecisions: true}
		cfg.Workers = shards
		cfg.Speculate = true
		spec := captureRun(t, cfg, sliceStream(boundaryArrivals(n)), false)
		assertCapturesEqual(t, seq, spec, "speculate+trace")
		res, err := Run(Config{
			Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog(),
			Workers: shards, Speculate: true, Opts: engine.Options{TraceDecisions: true},
		}, sliceStream(boundaryArrivals(n)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rollbacks != 0 {
			t.Fatalf("traced run speculated anyway (rollbacks=%d)", res.Rollbacks)
		}
	})
}

// A 64-shard speculative fleet — the scaled dimension of this PR — must
// still match the sequential coordinator byte for byte, including with more
// workers than most hosts have cores.
func TestSpeculative64ShardFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("64-shard fleet comparison is slow under -short")
	}
	const n, shards, seed = 8192, 64, 411
	newStream := func() engine.ArrivalStream {
		s, err := workload.NewStream(skewedConfig(900), n, seed)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := Config{Shards: shards, P: 8, Policy: wdeq(t), Router: NewLeastBacklog()}
	seq := captureRun(t, base, newStream(), true)
	for _, workers := range []int{8, shards} {
		cfg := base
		cfg.Router = NewLeastBacklog()
		cfg.Workers = workers
		cfg.Speculate = true
		par := captureRun(t, cfg, newStream(), true)
		assertCapturesEqual(t, seq, par, fmt.Sprintf("64-shard speculate workers=%d", workers))
	}
}
