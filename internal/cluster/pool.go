package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/malleable-sched/malleable/internal/engine"
)

// pool is the coordinator's persistent worker pool: workers goroutines, each
// statically owning the shards congruent to its index, woken together for
// one "window" of concurrent shard advancement and joined at a barrier
// before the router runs again. The static partition means a shard is only
// ever touched by one goroutine, so the engine's single-threaded steppers
// need no locking and every shard's event sequence is exactly the sequence
// the sequential coordinator would have produced.
//
// The barrier is an epoch counter plus a completion count, both atomic, with
// spin-yield waiting (runtime.Gosched) on both sides: windows are short —
// often a handful of events — so a channel round-trip per window would cost
// more than the window. Atomic operations carry the happens-before edges:
// the coordinator publishes the window's work before bumping the epoch, and
// each worker publishes its error slot before bumping done, so the race
// detector sees a clean handoff. The pool lives for one cluster run;
// close() retires the goroutines.
type pool struct {
	workers int
	owned   [][]int // worker -> statically owned shard indices
	work    func(shard int) error

	epoch   atomic.Uint64
	done    atomic.Int64
	stopped atomic.Bool
	errs    []error
	wg      sync.WaitGroup
}

// newPool starts workers goroutines over shards shards. workers must be in
// [2, shards].
func newPool(workers, shards int) *pool {
	p := &pool{
		workers: workers,
		owned:   make([][]int, workers),
		errs:    make([]error, workers),
	}
	for s := 0; s < shards; s++ {
		w := s % workers
		p.owned[w] = append(p.owned[w], s)
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.loop(w)
	}
	return p
}

func (p *pool) loop(w int) {
	defer p.wg.Done()
	seen := uint64(0)
	for {
		e := p.epoch.Load()
		if e == seen {
			if p.stopped.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		seen = e
		p.errs[w] = p.window(w)
		p.done.Add(1)
	}
}

// window runs the current work function over this worker's shards,
// converting a panic in policy or model code into an error so the
// coordinator fails the run instead of crashing the process.
func (p *pool) window(w int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("cluster: worker %d: panic: %v", w, rec)
		}
	}()
	for _, s := range p.owned[w] {
		if e := p.work(s); e != nil {
			return e
		}
	}
	return nil
}

// run executes one window: every worker applies work to its shards; run
// returns once all of them have reached the barrier, with the first (lowest
// worker index) error if any shard failed.
func (p *pool) run(work func(shard int) error) error {
	p.work = work
	p.done.Store(0)
	p.epoch.Add(1)
	for p.done.Load() < int64(p.workers) {
		runtime.Gosched()
	}
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// close retires the worker goroutines. Safe to call once, after the last
// window has returned.
func (p *pool) close() {
	p.stopped.Store(true)
	p.wg.Wait()
}

// taggedRow is one buffered shared-sink observation plus the global dispatch
// window it belongs to (see sinkBuffer).
type taggedRow struct {
	m      engine.TaskMetrics
	window int
}

// sinkBuffer stands in for the shared Config.Sink on one shard during
// parallel execution: it records completions instead of forwarding them, so
// workers never touch the shared sink concurrently, and the coordinator
// replays the buffers into the real sink at the next barrier in exactly the
// order the sequential coordinator would have produced.
//
// That order is reconstructed from a per-row sort key. Sequentially, a row
// emitted at virtual time t by shard s is observed during the advance for
// global dispatch k, where k is the first dispatch whose release covers t
// AND that follows the feed that made the row's event schedulable on s —
// k = max(lastFeed_s+1, min{j : release_j >= t}) — and within one advance
// rows are interleaved by (time, shard index), lowest first. Both
// ingredients are computable shard-locally: the worker bumps floor past each
// arrival it feeds, and releases (the batch's global release sequence,
// shared read-only) gives the covering dispatch by binary search. Rows
// retiring after the batch's last dispatch take window len(releases), i.e.
// they sort after every dispatched window, which is where the sequential
// drain emits them.
type sinkBuffer struct {
	rows     []taggedRow
	releases []float64 // global releases of the current batch, shared read-only
	floor    int       // 1 + batch index of the last arrival fed to this shard
}

// Observe buffers one completion with its reconstructed dispatch window.
func (b *sinkBuffer) Observe(m engine.TaskMetrics) {
	k := sort.SearchFloat64s(b.releases, m.Completion)
	if k < b.floor {
		k = b.floor
	}
	b.rows = append(b.rows, taggedRow{m: m, window: k})
}

// reset prepares the buffer for the next batch.
func (b *sinkBuffer) reset(releases []float64) {
	b.rows = b.rows[:0]
	b.releases = releases
	b.floor = 0
}

// flushBuffers merges the per-shard buffers into the shared sink in the
// sequential coordinator's global order: ascending (window, completion time,
// shard index), within-shard order preserved. Each buffer is already sorted
// by that key (a shard's windows and times are non-decreasing), so an
// n-way head scan suffices; n is the shard count, a handful, so the scan
// beats a merge heap. head is caller-owned scratch of length len(bufs) so a
// flush per dispatch window stays allocation-free.
func flushBuffers(bufs []*sinkBuffer, sink engine.MetricSink, head []int) {
	for i := range head {
		head[i] = 0
	}
	for {
		best := -1
		var bestW int
		var bestT float64
		for s, b := range bufs {
			if head[s] >= len(b.rows) {
				continue
			}
			r := b.rows[head[s]]
			if best < 0 || r.window < bestW || (r.window == bestW && r.m.Completion < bestT) {
				best, bestW, bestT = s, r.window, r.m.Completion
			}
		}
		if best < 0 {
			return
		}
		sink.Observe(bufs[best].rows[head[best]].m)
		head[best]++
	}
}
