// Optimistic (speculative) parallel execution — the classic optimistic side
// of parallel discrete-event simulation, applied to the fleet coordinator.
//
// The conservative modes in cluster.go never let a shard process an event
// past the next dispatch time, because the router might read that shard's
// state at the dispatch. For state-reading routers that means a full-fleet
// barrier per arrival (runWindowed), and cluster-parallel-lb pins exactly
// that overhead. The observation behind this file: the barrier protects far
// more than it needs to. Between two dispatches, only ONE shard's future is
// actually changed by the dispatch — the shard the router feeds. Every other
// shard's events were going to happen anyway, and even the fed shard's
// pre-release events were. So instead of stopping everyone at the next
// release, let every shard run optimistically PAST it, checkpoint each shard
// just before it crosses each pending release boundary, and when the router
// picks a victim, roll back that one shard to its last pre-release
// checkpoint. Every other shard keeps its speculated work.
//
// Concretely, the coordinator alternates two phases per window:
//
//  1. Speculate (parallel): pre-pull up to the current window depth of
//     arrivals (adaptive, see specBatchInit), so the next k release times are
//     known. One pool window advances every shard through
//     every event at or before the LAST pulled release (the horizon), taking
//     a lazy checkpoint whenever the shard is about to process its first
//     event strictly past a pending release — one Stepper.Snapshot covers a
//     whole run of releases with no shard event in between, so a shard takes
//     at most min(events, k) checkpoints per window, not k. Completions land
//     in the shard's window buffer (sinkBuffer), tagged with the dispatch
//     window they would belong to sequentially; the aggregate and sketch see
//     nothing yet.
//
//  2. Dispatch (sequential, cheap): for each pulled arrival in order, the
//     router reads per-shard states reconstructed WITHOUT any shard
//     synchronization — from the checkpoint covering this release for shards
//     that speculated past it, or from the live stepper for shards that
//     never reached it. Both are bit-identical to what the sequential
//     coordinator's advance-to-release would have produced, so the routing
//     decision (and the fleet probe observation, fired synchronously) is
//     bit-identical too. The chosen shard is then invalidated: if it had
//     speculated past the release it is rolled back — Stepper.Restore to the
//     checkpoint, buffered rows truncated to the checkpoint's row count, the
//     discarded events counted as waste — and the arrival is fed. From then
//     until the window ends the invalid shard advances inline
//     (StepUntil to each subsequent release) like a sequential shard, since
//     its speculation no longer describes its future.
//
// At the window's end every shard has committed exactly the events the
// sequential coordinator would have committed across the window's k
// advances, and the buffers hold exactly the rows the sequential shared sink
// would have observed, in per-shard emission order with their global
// (window, completion, shard) merge key. flushSpec then feeds each shard's
// rows to its aggregate and sketch in that per-shard order (bit-identical
// Welford folds) and replays the global merge into the shared sink — the
// same flushBuffers merge the conservative modes use.
//
// Rollback cannot cascade: shards never communicate between dispatches, so a
// misprediction is confined to the one shard the router fed, and a shard is
// rolled back at most once per window (its first feed invalidates it). The
// wasted work is re-executed inline with the feed incorporated — there is no
// replay log and no anti-message machinery, which is what keeps the
// determinism argument short: every state the router, probe, sink, aggregate
// or result ever observes is a state the sequential coordinator also
// produces.

package cluster

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/engine"
)

// The speculative coordinator pre-pulls up to specBatch arrivals per window:
// deeper windows amortize the speculation barrier over more dispatches, but
// every rollback discards more speculated work the deeper the window runs.
// The depth is adapted per window with an AIMD rule driven by the window's
// rollback count — halve after a window that rolled any shard back, add
// specBatchStep after a clean one — clamped to [specBatchMin, specBatchMax].
// Like batchSize, the depth must not influence results — only wall-clock
// time — and the byte-identity tests pin that it does not, at every
// controller state.
const (
	specBatchInit = 64
	specBatchMin  = 8
	specBatchMax  = 256
	specBatchStep = 8
)

// specCkpt is one pre-release checkpoint of a shard: the engine snapshot
// plus the shard's committed sink-buffer length at the same instant, so a
// rollback can discard the rows the discarded events emitted.
type specCkpt struct {
	snap engine.StepperSnapshot
	rows int
}

// specShard is one shard's per-window speculation state. The checkpoint
// storage persists across windows (snapshots reuse their buffers), so a
// warmed fleet speculates without steady-state allocation.
type specShard struct {
	// ckpts[:nCkpt] are this window's checkpoints, in boundary order.
	ckpts []specCkpt
	nCkpt int
	// ckptOf maps each window-local dispatch index to the checkpoint taken
	// before the shard first crossed that dispatch's release, or -1 when the
	// shard's speculation never crossed it (its live state is still valid at
	// that release).
	ckptOf []int32
	// invalid marks a shard that was fed this window: its speculated future
	// is stale, so it advances inline with the dispatch loop instead.
	invalid bool
}

// runSpeculative is the optimistic parallel coordinator mode (see the file
// comment for the design and the determinism argument).
func (c *coordinator) runSpeculative() (*engine.LoadResult, error) {
	n := c.n
	c.spec = make([]*specShard, n)
	for s := range c.spec {
		c.spec[s] = &specShard{ckptOf: make([]int32, specBatchMax)}
	}
	arrs := make([]engine.Arrival, 0, specBatchMax)
	releases := make([]float64, 0, specBatchMax)
	invalids := make([]int, 0, n)
	batch := specBatchInit
	batchLo, batchHi := batch, batch
	var horizon float64

	// speculate advances one shard through every event at or before the
	// window horizon, checkpointing lazily at release-boundary crossings. The
	// strict `<` matches the sequential coordinator's event granularity: a
	// shard event at exactly a release time retires BEFORE the arrival is
	// routed, so the state used for that dispatch includes it.
	speculate := func(s int) error {
		sp := c.spec[s]
		sp.nCkpt = 0
		sp.invalid = false
		st := c.steppers[s]
		buf := c.bufs[s]
		k := len(releases)
		jNext := 0
		for {
			t := st.NextEventTime()
			if math.IsInf(t, 1) || t > horizon {
				break
			}
			if jNext < k && releases[jNext] < t {
				if sp.nCkpt == len(sp.ckpts) {
					sp.ckpts = append(sp.ckpts, specCkpt{})
				}
				ck := &sp.ckpts[sp.nCkpt]
				if err := st.Snapshot(&ck.snap); err != nil {
					return fmt.Errorf("cluster: shard %d: %w", s, err)
				}
				ck.rows = len(buf.rows)
				ci := int32(sp.nCkpt)
				sp.nCkpt++
				for jNext < k && releases[jNext] < t {
					sp.ckptOf[jNext] = ci
					jNext++
				}
			}
			if _, err := st.Step(); err != nil {
				return fmt.Errorf("cluster: shard %d: %w", s, err)
			}
		}
		// Releases the speculation never crossed: the live rest state is
		// exact at them (every processed event is at or before them).
		for ; jNext < k; jNext++ {
			sp.ckptOf[jNext] = -1
		}
		return nil
	}

	next, ok, err := c.pull()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: empty arrival stream")
	}
	for ok {
		arrs = arrs[:0]
		releases = releases[:0]
		for ok && len(arrs) < batch {
			arrs = append(arrs, next)
			releases = append(releases, next.Release)
			next, ok, err = c.pull()
			if err != nil {
				return nil, err
			}
		}
		k := len(arrs)
		rollbacksBefore := c.rollbacks
		// The horizon is the LAST pulled release: no buffered row can outlive
		// its window table, so windows are self-contained.
		horizon = releases[k-1]
		for _, b := range c.bufs {
			b.reset(releases)
		}
		if err := c.pool.run(speculate); err != nil {
			return nil, err
		}

		invalids = invalids[:0]
		for i := 0; i < k; i++ {
			a := arrs[i]
			r := releases[i]
			// Shards fed earlier this window advance inline: the router must
			// see their exact state at r, feed and all.
			for _, s := range invalids {
				if _, err := c.steppers[s].StepUntil(r); err != nil {
					return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
				}
			}
			c.fillSpecStates(i)
			idx, err := c.route(a)
			if err != nil {
				return nil, err
			}
			sp := c.spec[idx]
			st := c.steppers[idx]
			if !sp.invalid {
				if ci := sp.ckptOf[i]; ci >= 0 {
					// The router picked a shard that speculated past this
					// release: roll it back to its pre-release checkpoint and
					// discard the rows the lost events emitted.
					ck := &sp.ckpts[ci]
					c.wasted += c.results[idx].Events - ck.snap.Events()
					c.rollbacks++
					if err := st.Restore(&ck.snap); err != nil {
						return nil, fmt.Errorf("cluster: shard %d: %w", idx, err)
					}
					c.bufs[idx].rows = c.bufs[idx].rows[:ck.rows]
				}
				sp.invalid = true
				invalids = append(invalids, idx)
			}
			if err := st.Feed(a); err != nil {
				return nil, fmt.Errorf("cluster: shard %d: %w", idx, err)
			}
			c.bufs[idx].floor = i + 1
			c.dispatched[idx]++
			c.routed++
			c.observeDispatch(idx, r)
		}
		c.flushSpec()
		// AIMD depth update: a rollback means the window speculated past a
		// misprediction, so back off multiplicatively; a clean window earns a
		// small additive raise. Changing the depth only re-cuts the window
		// boundaries of future pulls — it cannot change any routing decision
		// or any committed row.
		if c.rollbacks > rollbacksBefore {
			batch /= 2
			if batch < specBatchMin {
				batch = specBatchMin
			}
		} else if batch < specBatchMax {
			batch += specBatchStep
			if batch > specBatchMax {
				batch = specBatchMax
			}
		}
		if batch < batchLo {
			batchLo = batch
		}
		if batch > batchHi {
			batchHi = batch
		}
	}

	// Global stream over: close the feeds and drain every shard to its last
	// event in parallel. Drain rows carry window 0 over an empty release
	// table — plain (time, shard) order, the sequential drain's interleave.
	for _, st := range c.steppers {
		st.CloseFeed()
	}
	for _, b := range c.bufs {
		b.reset(nil)
	}
	drain := func(s int) error {
		if _, err := c.steppers[s].StepUntil(math.Inf(1)); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		return nil
	}
	if err := c.pool.run(drain); err != nil {
		return nil, err
	}
	c.flushSpec()
	res, err := c.finish()
	if err != nil {
		return nil, err
	}
	res.Rollbacks = c.rollbacks
	res.WastedEvents = c.wasted
	res.SpecBatchMin = batchLo
	res.SpecBatchMax = batchHi
	res.SpecBatchLast = batch
	return res, nil
}

// fillSpecStates assembles the router/probe scratch for window-local
// dispatch i without synchronizing the fleet: shards that speculated past
// the release answer from their pre-release checkpoint, everyone else (still
// short of the release, or advanced inline after a feed) answers from the
// live stepper. Either way the state is the rest state the sequential
// coordinator's advance-to-release would have left — same clock, same
// backlog, same allocation, same completed count.
func (c *coordinator) fillSpecStates(i int) {
	for s, st := range c.steppers {
		sp := c.spec[s]
		if !sp.invalid {
			if ci := sp.ckptOf[i]; ci >= 0 {
				ck := &sp.ckpts[ci]
				c.states[s] = ShardState{
					Shard:      s,
					Now:        ck.snap.Now(),
					Backlog:    ck.snap.Backlog(),
					Allocated:  ck.snap.Allocated(),
					Completed:  ck.snap.Completed(),
					Dispatched: c.dispatched[s],
				}
				continue
			}
		}
		c.states[s] = ShardState{
			Shard:      s,
			Now:        st.Now(),
			Backlog:    st.Backlog(),
			Allocated:  st.Allocated(),
			Completed:  st.Completed(),
			Dispatched: c.dispatched[s],
		}
	}
}

// flushSpec commits a validated window: each shard's surviving rows feed its
// aggregate and sketch in per-shard emission order (the order the sequential
// coordinator's per-shard sinks observe, so the Welford folds are
// bit-identical), then the shared sink — if any — receives the global
// (window, completion, shard) merge.
func (c *coordinator) flushSpec() {
	for s, b := range c.bufs {
		agg, sk := c.aggs[s], c.sketches[s]
		for i := range b.rows {
			agg.Observe(b.rows[i].m)
			sk.Observe(b.rows[i].m)
		}
	}
	if c.cfg.Sink != nil {
		flushBuffers(c.bufs, c.cfg.Sink, c.flushHead)
	}
}
