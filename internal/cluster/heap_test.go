package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// The heap must agree with the linear scan it replaced on every operation:
// min is the lowest (key, shard) pair, +Inf keys are reported as such, and
// randomized key updates never break the ordering.
func TestShardHeapMatchesLinearScan(t *testing.T) {
	const n = 17
	var h shardHeap
	h.init(n)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = math.Inf(1)
	}

	scanMin := func() (int, float64) {
		best, bestT := -1, math.Inf(1)
		for i, k := range keys {
			if k < bestT {
				best, bestT = i, k
			}
		}
		if best < 0 {
			// All +Inf: the heap reports some shard with a +Inf key; only
			// the key matters to callers.
			return -1, math.Inf(1)
		}
		return best, bestT
	}

	check := func(step int) {
		wantS, wantT := scanMin()
		gotS, gotT := h.min()
		if wantS < 0 {
			if !math.IsInf(gotT, 1) {
				t.Fatalf("step %d: heap min key %g, want +Inf", step, gotT)
			}
			return
		}
		if gotS != wantS || gotT != wantT {
			t.Fatalf("step %d: heap min (%d, %g), scan min (%d, %g)", step, gotS, gotT, wantS, wantT)
		}
	}

	check(-1)
	rng := rand.New(rand.NewSource(42))
	times := []float64{0.5, 1, 1, 2, 2.5, 3, 3, 3, math.Inf(1)}
	for step := 0; step < 5000; step++ {
		s := rng.Intn(n)
		k := times[rng.Intn(len(times))] * (1 + float64(step)/1000)
		if math.IsInf(k, 1) {
			k = math.Inf(1)
		}
		keys[s] = k
		h.update(s, k)
		check(step)
	}
	// Drain everything back to +Inf through the min side, the coordinator's
	// access pattern.
	for {
		s, k := h.min()
		if math.IsInf(k, 1) {
			break
		}
		keys[s] = math.Inf(1)
		h.update(s, math.Inf(1))
		check(-2)
	}
}

// Ties on the key must resolve toward the lowest shard index — the
// coordinator's determinism depends on it.
func TestShardHeapTieBreaksTowardLowestShard(t *testing.T) {
	var h shardHeap
	h.init(8)
	for _, s := range []int{5, 3, 6} {
		h.update(s, 7)
	}
	if s, k := h.min(); s != 3 || k != 7 {
		t.Fatalf("min = (%d, %g), want (3, 7)", s, k)
	}
	h.update(3, math.Inf(1))
	if s, _ := h.min(); s != 5 {
		t.Fatalf("min = %d after removing 3, want 5", s)
	}
}
