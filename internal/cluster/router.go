package cluster

import (
	"fmt"

	"github.com/malleable-sched/malleable/internal/engine"
)

// ShardState is the live snapshot a Router observes about one shard at
// dispatch time. The coordinator interleaves shard steppers in global event
// order, so every field is exact as of the arrival being routed — not a
// stale poll: Backlog is the shard's alive-set size at the arrival's release
// time, Allocated the capacity its policy handed out at its current
// decision.
type ShardState struct {
	// Shard is the shard index.
	Shard int
	// Now is the shard's virtual time (<= the arrival's release).
	Now float64
	// Backlog is the number of alive tasks on the shard right now.
	Backlog int
	// Allocated is the capacity the shard's policy handed out at its
	// current decision (0 while the shard is idle). A deep backlog with a
	// small Allocated means the alive tasks are degree-bound, not the
	// platform.
	Allocated float64
	// Completed is the number of tasks the shard has retired so far.
	Completed int
	// Dispatched is the number of arrivals routed to the shard so far.
	Dispatched int
}

// Router decides which shard an arriving task is dispatched to. Route is
// called once per arrival, in global release order, with the live ShardState
// snapshots; it must return an index in [0, len(shards)).
//
// Routers may hold state (a round-robin cursor, an RNG) but must be
// deterministic: the dispatch sequence has to be a pure function of the
// router's construction (name + seed) and the arrival stream, never of
// wall-clock time, map order or goroutine interleaving — that is what makes
// a cluster run byte-reproducible at any GOMAXPROCS. A Router is used by one
// coordinator at a time and need not be safe for concurrent use.
type Router interface {
	// Name identifies the router in reports.
	Name() string
	// Route returns the destination shard for the arrival.
	Route(a engine.Arrival, shards []ShardState) int
}

// StateFreeRouter is the optional capability a Router declares when its
// Route decisions never read the per-shard snapshots — round-robin cycles a
// counter, hash-tenant hashes the arrival; neither looks at backlog. A
// parallel coordinator (Config.Workers >= 2) exploits the declaration: since
// routing such arrivals needs no exact fleet state, whole batches of
// dispatches proceed without synchronizing the shards, which is what buys
// near-linear scaling. The contract is strict: a Route that returns
// StateFree() true must not read ANY field of the shards slice beyond its
// length — the snapshots handed to it in batched mode are stale. Load-aware
// routers (least-backlog, po2) simply don't implement the interface and get
// an exact snapshot per dispatch in every mode.
type StateFreeRouter interface {
	Router
	// StateFree reports that Route ignores the shards snapshot contents.
	StateFree() bool
}

// WindowStaleRouter is the opt-in capability of a state-reading router that
// accepts fleet views observed as of the last window boundary instead of
// exact dispatch-time snapshots. The coordinator's stale-batched mode
// (Config.StaleRouting) publishes one view per dispatch window of up to
// batchSize arrivals — the state every shard reached at the previous
// window's horizon, evolved only by the coordinator's own in-window
// dispatch bookkeeping — so the per-dispatch barrier disappears and the
// router runs through the same wide-window fast path as the state-free
// routers. The Router contract's determinism clause still applies
// unchanged: decisions must be a pure function of the handed ShardState
// slice and the router's seeded construction, which is what keeps a
// window-stale run byte-identical at any worker count (the views depend
// only on where the window boundaries fall in the stream, never on worker
// interleaving). Routers that need exact state simply don't implement the
// interface and keep the per-dispatch window in every mode.
type WindowStaleRouter interface {
	Router
	// WindowStale reports that Route accepts window-boundary views.
	WindowStale() bool
}

// splitmix is the deterministic RNG of the randomized routers: splitmix64,
// the same generator the engine's ShardSeed derivation uses, so a router's
// draws are a pure function of its seed.
type splitmix struct {
	state uint64
}

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RoundRobin dispatches arrivals to shards in cyclic order, blind to load.
// It is the baseline router: perfectly even in count, maximally naive about
// backlog, which is exactly what makes it the control in router comparisons.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin router starting at shard 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name returns "round-robin".
func (r *RoundRobin) Name() string { return "round-robin" }

// Route returns the next shard in cyclic order.
func (r *RoundRobin) Route(a engine.Arrival, shards []ShardState) int {
	i := r.next % len(shards)
	r.next = i + 1
	return i
}

// StateFree reports that round-robin never reads the fleet snapshots.
func (r *RoundRobin) StateFree() bool { return true }

// HashTenant pins every tenant to one shard by hashing the tenant index —
// the affinity router: a tenant's tasks never spread, so per-tenant state
// (caches, quotas) could live shard-local. Under a Zipf-skewed tenant mix
// this is the router that collapses: the head tenant's whole load lands on
// one shard.
type HashTenant struct {
	seed int64
}

// NewHashTenant returns a tenant-affinity router; the seed permutes the
// tenant→shard mapping deterministically.
func NewHashTenant(seed int64) *HashTenant { return &HashTenant{seed: seed} }

// Name returns "hash-tenant".
func (r *HashTenant) Name() string { return "hash-tenant" }

// Route hashes the arrival's tenant to a shard.
func (r *HashTenant) Route(a engine.Arrival, shards []ShardState) int {
	// One splitmix64 step over (tenant, seed): a fixed mixing function, not
	// a stream, so the mapping is stateless and stable for the whole run.
	s := splitmix{state: uint64(a.Tenant)<<32 ^ uint64(r.seed)}
	return int(s.next() % uint64(len(shards)))
}

// StateFree reports that hash-tenant never reads the fleet snapshots.
func (r *HashTenant) StateFree() bool { return true }

// LeastBacklog dispatches every arrival to the shard with the fewest alive
// tasks — the full-information greedy placement. It reads every shard's
// snapshot on every arrival (O(shards) per dispatch), which is the cost the
// power-of-two-choices router exists to avoid.
type LeastBacklog struct{}

// NewLeastBacklog returns the least-backlog router.
func NewLeastBacklog() *LeastBacklog { return &LeastBacklog{} }

// Name returns "least-backlog".
func (r *LeastBacklog) Name() string { return "least-backlog" }

// Route returns the lowest-indexed shard with the smallest backlog; ties
// break toward fewer dispatched arrivals so an all-idle fleet still spreads.
func (r *LeastBacklog) Route(a engine.Arrival, shards []ShardState) int {
	best := 0
	for i := 1; i < len(shards); i++ {
		if shards[i].Backlog < shards[best].Backlog ||
			(shards[i].Backlog == shards[best].Backlog && shards[i].Dispatched < shards[best].Dispatched) {
			best = i
		}
	}
	return best
}

// WindowStale opts least-backlog into stale-batched dispatch: its scan
// reads Backlog and Dispatched, and both stay meaningful on a
// window-boundary view — each in-window dispatch counts into its target's
// backlog estimate until the next boundary republishes exact state, so a
// window spreads across shards instead of dogpiling the boundary minimum.
func (r *LeastBacklog) WindowStale() bool { return true }

// PowerOfTwo samples two shards with its deterministic RNG and dispatches to
// the one with the smaller backlog — the classic power-of-two-choices
// placement: exponentially better tail behavior than blind random placement
// at O(1) sampled state per dispatch instead of least-backlog's O(shards)
// scan.
type PowerOfTwo struct {
	rng splitmix
}

// NewPowerOfTwo returns a power-of-two-choices router drawing from a
// splitmix64 stream seeded with seed: the same seed replays the same
// dispatch sequence, byte for byte.
func NewPowerOfTwo(seed int64) *PowerOfTwo {
	return &PowerOfTwo{rng: splitmix{state: uint64(seed)}}
}

// Name returns "po2".
func (r *PowerOfTwo) Name() string { return "po2" }

// Route samples two shards and returns the one with the smaller backlog
// (the first sample on a tie).
func (r *PowerOfTwo) Route(a engine.Arrival, shards []ShardState) int {
	n := uint64(len(shards))
	i := int(r.rng.next() % n)
	j := int(r.rng.next() % n)
	if shards[j].Backlog < shards[i].Backlog {
		return j
	}
	return i
}

// WindowStale opts power-of-two-choices into stale-batched dispatch: its
// two sampled backlogs tolerate boundary staleness by construction (the
// classic analysis assumes sampled, possibly outdated load), and the
// coordinator's in-window dispatch counting keeps repeated draws from
// piling onto one window's minimum.
func (r *PowerOfTwo) WindowStale() bool { return true }

// RouterNames lists the bundled router names RouterByName accepts.
func RouterNames() []string {
	return []string{"round-robin", "hash-tenant", "least-backlog", "po2"}
}

// RouterByName constructs a bundled router. The seed parameterizes the
// randomized routers (po2's sampling stream, hash-tenant's mapping
// permutation) and is ignored by the deterministic-by-construction ones.
func RouterByName(name string, seed int64) (Router, error) {
	switch name {
	case "round-robin":
		return NewRoundRobin(), nil
	case "hash-tenant":
		return NewHashTenant(seed), nil
	case "least-backlog":
		return NewLeastBacklog(), nil
	case "po2":
		return NewPowerOfTwo(seed), nil
	default:
		return nil, fmt.Errorf("cluster: unknown router %q (want one of %v)", name, RouterNames())
	}
}
