package cluster

import (
	"strings"
	"testing"

	"github.com/malleable-sched/malleable/internal/engine"
)

func states(backlogs ...int) []ShardState {
	out := make([]ShardState, len(backlogs))
	for i, b := range backlogs {
		out[i] = ShardState{Shard: i, Backlog: b}
	}
	return out
}

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin()
	s := states(0, 0, 0)
	for i := 0; i < 9; i++ {
		if got := r.Route(engine.Arrival{}, s); got != i%3 {
			t.Fatalf("dispatch %d went to %d, want %d", i, got, i%3)
		}
	}
}

func TestLeastBacklogArgminAndTies(t *testing.T) {
	r := NewLeastBacklog()
	if got := r.Route(engine.Arrival{}, states(3, 1, 2, 1)); got != 1 {
		t.Errorf("argmin = %d, want 1 (lowest index among minima)", got)
	}
	// All-equal backlogs: the dispatched tie-break spreads instead of
	// pinning shard 0.
	s := states(0, 0, 0)
	s[0].Dispatched = 2
	s[1].Dispatched = 1
	if got := r.Route(engine.Arrival{}, s); got != 2 {
		t.Errorf("tie-break = %d, want 2 (fewest dispatched)", got)
	}
}

func TestHashTenantStableMapping(t *testing.T) {
	r := NewHashTenant(7)
	s := states(0, 0, 0, 0)
	for tenant := 0; tenant < 16; tenant++ {
		a := engine.Arrival{Tenant: tenant}
		first := r.Route(a, s)
		for i := 0; i < 3; i++ {
			if got := r.Route(a, s); got != first {
				t.Fatalf("tenant %d moved from shard %d to %d", tenant, first, got)
			}
		}
	}
	// A different seed permutes the mapping (with 16 tenants over 4 shards
	// at least one must move).
	other := NewHashTenant(8)
	moved := false
	for tenant := 0; tenant < 16; tenant++ {
		a := engine.Arrival{Tenant: tenant}
		if r.Route(a, s) != other.Route(a, s) {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("seed change left the tenant mapping identical")
	}
}

func TestPowerOfTwoSeededReplay(t *testing.T) {
	s := states(5, 0, 7, 3)
	a := NewPowerOfTwo(123)
	b := NewPowerOfTwo(123)
	c := NewPowerOfTwo(124)
	var seqA, seqC []int
	for i := 0; i < 64; i++ {
		ra := a.Route(engine.Arrival{}, s)
		if rb := b.Route(engine.Arrival{}, s); ra != rb {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, ra, rb)
		}
		seqA = append(seqA, ra)
		seqC = append(seqC, c.Route(engine.Arrival{}, s))
	}
	same := true
	for i := range seqA {
		if seqA[i] != seqC[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical 64-draw sequence")
	}
	// po2 must always prefer the smaller backlog of its two samples: shard
	// 2 (backlog 7) can only win against itself.
	for i, v := range seqA {
		if v == 2 {
			// Legal only if both draws hit shard 2; rare but possible. Check
			// it is not the norm.
			_ = i
		}
	}
	count2 := 0
	for _, v := range seqA {
		if v == 2 {
			count2++
		}
	}
	if count2 > len(seqA)/4 {
		t.Errorf("deepest shard won %d of %d po2 draws", count2, len(seqA))
	}
}

func TestRouterByName(t *testing.T) {
	for _, name := range RouterNames() {
		r, err := RouterByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("RouterByName(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := RouterByName("nope", 1); err == nil || !strings.Contains(err.Error(), "unknown router") {
		t.Errorf("unknown router error = %v", err)
	}
}
