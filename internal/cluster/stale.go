// Stale-batched execution: state-reading routers at state-free cost.
//
// The windowed mode buys exact router views with a full-fleet barrier per
// dispatch; the speculative mode hides the barrier behind checkpoints and
// pays for mispredictions with rollbacks. Stale-batched removes the
// per-dispatch synchronization a third way: it changes what the router is
// promised. A WindowStaleRouter accepts fleet views observed AS OF THE LAST
// WINDOW BOUNDARY — the coordinator publishes one view per dispatch window
// of up to batchSize arrivals (every shard's exact rest state at the
// previous window's horizon) and evolves it only with its own in-window
// dispatch bookkeeping: each routed arrival counts into its target's
// backlog and dispatch tally until the next boundary republishes exact
// state. Routing a whole window therefore needs no shard synchronization at
// all, and execution runs through the same wide-window batched fast path as
// the state-free routers: one barrier per window, FeedBatch per shard.
//
// The determinism argument is the point. The view published at a boundary
// is a function of (stream prefix, window size) alone: which arrivals form
// a window is fixed by the stream and batchSize, and every shard's state at
// a boundary is fixed by the dispatches before it — never by how many
// workers advanced the shards or in what order they finished. So the
// dispatch sequence, and with it every observable output, is byte-identical
// at ANY worker count, including 0 and 1 (which run the same algorithm
// serially). What stale-batched does NOT promise is the exact-view
// schedule: its routing differs — deterministically — from the sequential
// coordinator's, trading bounded view staleness (at most one window) for
// the disappearance of per-dispatch barriers. The router-quality guard in
// the test suite bounds what that staleness costs in p99 flow.
package cluster

import (
	"fmt"
	"math"

	"github.com/malleable-sched/malleable/internal/engine"
)

// runWindow executes one window's shard work on the pool, or serially on
// the coordinator goroutine when the run has no pool (Workers < 2) — same
// work, same results, fewer hands.
func (c *coordinator) runWindow(work func(int) error) error {
	if c.pool != nil {
		return c.pool.run(work)
	}
	for s := 0; s < c.n; s++ {
		if err := work(s); err != nil {
			return err
		}
	}
	return nil
}

// runStaleBatched is the wide-window mode for window-stale routers: publish
// the boundary view, pre-route a whole window against it (evolving only the
// coordinator's own dispatch counts), then advance every shard through the
// window privately — one barrier per window, exactly like runBatched, with
// the fleet probe observing the same views the router saw.
func (c *coordinator) runStaleBatched() (*engine.LoadResult, error) {
	arrs := make([]engine.Arrival, 0, batchSize)
	releases := make([]float64, 0, batchSize)
	perShard := make([]shardBatch, c.n)
	scratch := c.newFeedScratch()
	var horizon float64

	work := func(s int) error {
		return c.feedWindow(s, arrs, perShard[s].arrivals, scratch, horizon)
	}

	next, ok, err := c.pull()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("cluster: empty arrival stream")
	}
	for ok {
		arrs = arrs[:0]
		releases = releases[:0]
		for i := range perShard {
			perShard[i].arrivals = perShard[i].arrivals[:0]
		}
		// Publish the window's view: every shard is at rest at the previous
		// window's horizon (the last window boundary), so this snapshot —
		// and with it every routing decision of the window — depends only
		// on where the boundaries fall in the stream, never on worker
		// scheduling.
		c.fillStates()
		c.staleViews++
		for ok && len(arrs) < batchSize {
			idx, err := c.route(next)
			if err != nil {
				return nil, err
			}
			arrs = append(arrs, next)
			releases = append(releases, next.Release)
			perShard[idx].arrivals = append(perShard[idx].arrivals, int32(len(arrs)-1))
			c.dispatched[idx]++
			c.routed++
			// The coordinator's own dispatches are the one part of the view
			// it can keep current for free: counting the routed-but-not-yet
			// -admitted arrival into the estimate spreads a window across
			// shards instead of dogpiling the boundary minimum.
			c.states[idx].Backlog++
			c.states[idx].Dispatched = c.dispatched[idx]
			c.observeDispatch(idx, next.Release)
			next, ok, err = c.pull()
			if err != nil {
				return nil, err
			}
		}
		horizon = releases[len(releases)-1]
		if c.bufs != nil {
			for _, b := range c.bufs {
				b.reset(releases)
			}
		}
		if err := c.runWindow(work); err != nil {
			return nil, err
		}
		if c.bufs != nil {
			flushBuffers(c.bufs, c.cfg.Sink, c.flushHead)
		}
	}

	for _, st := range c.steppers {
		st.CloseFeed()
	}
	// Drain exactly like runBatched: window 0 over an empty release table
	// reconstructs the sequential (time, shard) interleave for the sink.
	if c.bufs != nil {
		for _, b := range c.bufs {
			b.reset(nil)
		}
	}
	drain := func(s int) error {
		if _, err := c.steppers[s].StepUntil(math.Inf(1)); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		return nil
	}
	if err := c.runWindow(drain); err != nil {
		return nil, err
	}
	if c.bufs != nil {
		flushBuffers(c.bufs, c.cfg.Sink, c.flushHead)
	}
	res, err := c.finish()
	if err != nil {
		return nil, err
	}
	res.StaleViews = c.staleViews
	res.StaleWindow = batchSize
	return res, nil
}
