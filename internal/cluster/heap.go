package cluster

import "math"

// shardHeap is an indexed binary min-heap over the fleet's shard next-event
// times, keyed (time, shard index) with ties toward the lower index — the
// exact order the coordinator's old linear scan produced, at O(log n) per
// key change instead of O(n) per event. The heap always holds every shard;
// a shard with nothing scheduled carries a +Inf key and simply sinks to the
// bottom, so "no event" needs no membership bookkeeping.
type shardHeap struct {
	key  []float64 // shard -> next-event time (+Inf = nothing scheduled)
	heap []int     // heap slot -> shard
	pos  []int     // shard -> heap slot
}

// init sizes the heap for n shards, every key +Inf. The all-equal start is
// trivially heap-ordered.
func (h *shardHeap) init(n int) {
	h.key = make([]float64, n)
	h.heap = make([]int, n)
	h.pos = make([]int, n)
	for i := 0; i < n; i++ {
		h.key[i] = math.Inf(1)
		h.heap[i] = i
		h.pos[i] = i
	}
}

// less orders heap slots by (key, shard index). The index tie-break is what
// keeps the coordinator's interleave deterministic when several shards have
// events at the same instant.
func (h *shardHeap) less(a, b int) bool {
	sa, sb := h.heap[a], h.heap[b]
	if h.key[sa] != h.key[sb] {
		return h.key[sa] < h.key[sb]
	}
	return sa < sb
}

func (h *shardHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *shardHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *shardHeap) down(i int) {
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		m := left
		if right := left + 1; right < n && h.less(right, left) {
			m = right
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// update sets shard's key and restores heap order.
func (h *shardHeap) update(shard int, t float64) {
	if h.key[shard] == t {
		return
	}
	h.key[shard] = t
	h.up(h.pos[shard])
	h.down(h.pos[shard])
}

// min returns the shard with the earliest (key, index) and its key. With
// every key +Inf it returns whatever shard sits at the root; callers treat a
// +Inf key as "no event scheduled".
func (h *shardHeap) min() (int, float64) {
	s := h.heap[0]
	return s, h.key[s]
}
