// Benchmarks regenerating the paper's quantitative results (one benchmark
// per experiment of the DESIGN.md index) plus scaling and ablation
// benchmarks for the library's own algorithms. Each experiment benchmark runs
// a reduced sample per iteration so `go test -bench=.` terminates quickly;
// the paper-scale runs are produced by `mwct experiment -full`.
package malleable_test

import (
	"fmt"
	"math/rand"
	"testing"

	malleable "github.com/malleable-sched/malleable"
	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/experiments"
	"github.com/malleable-sched/malleable/internal/lp"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/workload"
)

// benchConfig is the reduced per-iteration configuration of the experiment
// benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Instances: 3, Sizes: []int{2, 3, 4, 5}, Processors: 1}
}

func BenchmarkE1GreedyVsOptimalUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.GreedyVsOptimal(benchConfig(), workload.Uniform)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Indistinguishable(1e-4) {
			b.Fatalf("greedy deviates from the optimum: %+v", res.Rows)
		}
	}
}

func BenchmarkE2GreedyVsOptimalConstWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.GreedyVsOptimal(benchConfig(), workload.ConstantWeight)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Indistinguishable(1e-4) {
			b.Fatalf("greedy deviates from the optimum: %+v", res.Rows)
		}
	}
}

func BenchmarkE3GreedyVsOptimalConstWV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.GreedyVsOptimal(benchConfig(), workload.ConstantWeightVolume)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Indistinguishable(1e-4) {
			b.Fatalf("greedy deviates from the optimum: %+v", res.Rows)
		}
	}
}

func BenchmarkE4Conjecture13Reversal(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{4, 8, 15}
	cfg.Instances = 2
	for i := 0; i < b.N; i++ {
		res, err := experiments.Conjecture13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Holds() {
			b.Fatalf("Conjecture 13 violated: %+v", res.Rows)
		}
	}
}

func BenchmarkE5OptimalOrderCatalogue(b *testing.B) {
	cfg := benchConfig()
	cfg.Instances = 2
	for i := 0; i < b.N; i++ {
		res, err := experiments.OrderCatalogue(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Holds() {
			b.Fatalf("catalogue violated: %+v", res)
		}
	}
}

func BenchmarkE6PreemptionBounds(b *testing.B) {
	cfg := benchConfig()
	cfg.Processors = 4
	cfg.Sizes = []int{4, 8, 16}
	cfg.Instances = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.Preemptions(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Theorem9Holds() {
			b.Fatalf("Theorem 9 violated: %+v", res.Rows)
		}
	}
}

func BenchmarkE7WDEQRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.WDEQRatio(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !res.WithinTwo() {
			b.Fatalf("WDEQ exceeded its guarantee: %+v", res.Rows)
		}
	}
}

func BenchmarkE8GreedyDominance(b *testing.B) {
	cfg := benchConfig()
	cfg.Processors = 2
	cfg.Sizes = []int{2, 3, 4}
	for i := 0; i < b.N; i++ {
		res, err := experiments.GreedyDominance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Holds() {
			b.Fatalf("greedy dominance violated: %+v", res.Rows)
		}
	}
}

func BenchmarkE9TableIComparison(b *testing.B) {
	cfg := benchConfig()
	cfg.Instances = 2
	cfg.Sizes = []int{2, 3}
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.GuaranteesRespected() {
			b.Fatalf("a guarantee was violated: %+v", res.Rows)
		}
	}
}

func BenchmarkE10SmithGreedyRatio(b *testing.B) {
	cfg := benchConfig()
	cfg.Sizes = []int{2, 3, 4}
	for i := 0; i < b.N; i++ {
		res, err := experiments.SmithRatio(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.WorstRatio() > 2 {
			b.Fatalf("Smith greedy exceeded a factor 2: %+v", res.Rows)
		}
	}
}

func BenchmarkF1BandwidthSharing(b *testing.B) {
	cfg := benchConfig()
	cfg.Instances = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.Bandwidth(cfg, 6)
		if err != nil {
			b.Fatal(err)
		}
		if !res.EquivalenceHolds() {
			b.Fatalf("equivalence violated: %+v", res)
		}
	}
}

// --- scaling benchmarks of the individual algorithms ---

func randomInstances(n int, p float64, count int) []*malleable.Instance {
	gen, err := workload.NewGenerator(workload.Uniform, n, p, 42)
	if err != nil {
		panic(err)
	}
	return gen.Batch(count)
}

func BenchmarkWDEQ(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		insts := randomInstances(n, 16, 8)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := malleable.WDEQ(insts[i%len(insts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWaterFill(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		insts := randomInstances(n, 16, 8)
		completions := make([][]float64, len(insts))
		for k, inst := range insts {
			s, err := malleable.WDEQ(inst)
			if err != nil {
				b.Fatal(err)
			}
			completions[k] = s.CompletionTimes()
		}
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := i % len(insts)
				if _, err := malleable.WaterFill(insts[k], completions[k]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedySmith(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		insts := randomInstances(n, 16, 8)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := malleable.GreedySmith(insts[i%len(insts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptimalEnumeration(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		insts := randomInstances(n, 2, 4)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := malleable.Optimal(insts[i%len(insts)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTheorem3Conversion(b *testing.B) {
	insts := randomInstances(32, 8, 8)
	schedules := make([]*malleable.Schedule, len(insts))
	for k, inst := range insts {
		s, err := malleable.WDEQ(inst)
		if err != nil {
			b.Fatal(err)
		}
		schedules[k], err = malleable.WaterFill(inst, s.CompletionTimes())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := malleable.ToProcessorSchedule(schedules[i%len(schedules)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks for the design choices listed in DESIGN.md ---

func BenchmarkAblationWFQuadraticVsSorted(b *testing.B) {
	insts := randomInstances(64, 16, 4)
	completions := make([][]float64, len(insts))
	for k, inst := range insts {
		s, err := malleable.WDEQ(inst)
		if err != nil {
			b.Fatal(err)
		}
		completions[k] = s.CompletionTimes()
	}
	b.Run("per-column", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(insts)
			if _, err := core.WaterFill(insts[k], completions[k]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plateau-levels", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(insts)
			if _, err := core.WaterFillLevels(insts[k], completions[k]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationEnumerationVsBnB(b *testing.B) {
	insts := randomInstances(5, 2, 4)
	b.Run("enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.Optimal(insts[i%len(insts)], exact.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("branch-and-bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.BranchAndBound(insts[i%len(insts)], exact.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationLPFloatVsRational(b *testing.B) {
	insts := randomInstances(4, 2, 4)
	order := []int{0, 1, 2, 3}
	b.Run("float64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.SolveOrder(insts[i%len(insts)], order, false, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.SolveOrder(insts[i%len(insts)], order, true, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationGreedyOrderings(b *testing.B) {
	insts := randomInstances(12, 4, 4)
	rng := rand.New(rand.NewSource(3))
	b.Run("smith", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GreedySmith(insts[i%len(insts)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("portfolio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BestGreedy(insts[i%len(insts)], rng, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("portfolio+random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BestGreedy(insts[i%len(insts)], rng, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkLPSimplex(b *testing.B) {
	// A representative order LP, solved from scratch each iteration.
	gen, err := workload.NewGenerator(workload.Uniform, 6, 3, 7)
	if err != nil {
		b.Fatal(err)
	}
	inst := gen.Next()
	order := inst.SmithOrder()
	b.Run("order-lp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.SolveOrder(inst, order, false, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	// A plain dense LP exercising the simplex directly.
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := lp.NewModel(lp.Maximize)
			vars := make([]int, 12)
			for v := range vars {
				vars[v] = m.AddVariable("x", float64(1+v%5))
			}
			for c := 0; c < 10; c++ {
				row := map[int]float64{}
				for v := range vars {
					row[vars[v]] = float64((v+c)%4 + 1)
				}
				m.AddConstraint("c", row, lp.LE, float64(20+c))
			}
			if _, err := m.Solve(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSchedulePipeline(b *testing.B) {
	// End-to-end: generate, schedule with WDEQ, normalize, convert to the
	// integral form and validate — the full path a user of the library takes.
	gen, err := workload.NewGenerator(workload.Uniform, 24, 8, 11)
	if err != nil {
		b.Fatal(err)
	}
	insts := gen.Batch(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := insts[i%len(insts)]
		s, err := core.RunWDEQ(inst)
		if err != nil {
			b.Fatal(err)
		}
		wf, err := core.Normalize(s)
		if err != nil {
			b.Fatal(err)
		}
		pa, err := schedule.FromColumns(wf)
		if err != nil {
			b.Fatal(err)
		}
		if err := pa.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- online engine benchmarks (the sustained-load scenario family) ---

func onlineArrivals(b *testing.B, n int, seed int64) []malleable.Arrival {
	b.Helper()
	arrivals, err := workload.GenerateArrivals(workload.ArrivalConfig{
		Class:   workload.Uniform,
		P:       8,
		Process: workload.Poisson,
		Rate:    8,
	}, n, seed)
	if err != nil {
		b.Fatal(err)
	}
	return arrivals
}

// BenchmarkEngineWDEQPoisson exercises the discrete-event loop end to end:
// Poisson arrivals, incremental alive-set maintenance, one WDEQ invocation
// per event.
func BenchmarkEngineWDEQPoisson(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		arrivals := onlineArrivals(b, n, 17)
		policy, err := malleable.OnlinePolicyByName("wdeq")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := malleable.RunOnline(8, policy, arrivals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnginePolicies compares the per-event cost of the bundled online
// policies on the same arrival stream.
func BenchmarkEnginePolicies(b *testing.B) {
	arrivals := onlineArrivals(b, 1024, 23)
	for _, name := range []string{"wdeq", "deq", "weight-greedy", "smith-ratio"} {
		policy, err := malleable.OnlinePolicyByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := malleable.RunOnline(8, policy, arrivals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineSharded measures the concurrent multi-shard driver: four
// engines on four goroutines plus the deterministic merge.
func BenchmarkEngineSharded(b *testing.B) {
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workload.ArrivalConfig{Class: workload.Uniform, P: 8, Process: workload.Poisson, Rate: 8}
	source := func(shard int, seed int64) ([]malleable.Arrival, error) {
		return workload.GenerateArrivals(cfg, 512, seed)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := malleable.RunOnlineShards(8, policy, source, 4, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSteadyState is the headline number of the zero-allocation
// refactor: a warmed OnlineRunner re-executing the same Poisson workload into
// a reused result. Allocations are reported (the steady state must show
// 0 allocs/op) together with a custom tasks/sec metric so benchstat can track
// throughput directly across commits.
func BenchmarkEngineSteadyState(b *testing.B) {
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1_000, 10_000, 100_000} {
		arrivals := onlineArrivals(b, n, 29)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runner := malleable.NewOnlineRunner()
			res := &malleable.OnlineResult{}
			// Warm the scratch outside the timer.
			if err := runner.RunInto(res, 8, policy, arrivals, malleable.OnlineOptions{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := runner.RunInto(res, 8, policy, arrivals, malleable.OnlineOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(n*b.N)/elapsed, "tasks/sec")
			}
		})
	}
}

func sizeName(n int) string {
	return fmt.Sprintf("n=%03d", n)
}

// BenchmarkEngineSpeedupModels compares the per-event cost of the bundled
// speedup models on the same WDEQ Poisson workload: the model-threaded
// advance step (interface call + math) versus the paper's linear division.
func BenchmarkEngineSpeedupModels(b *testing.B) {
	policy, err := malleable.OnlinePolicyByName("wdeq")
	if err != nil {
		b.Fatal(err)
	}
	arrivals := onlineArrivals(b, 1024, 31)
	for _, spec := range []string{"linear", "powerlaw:0.75", "amdahl:0.1", "platform:8@0,4@40,8@80"} {
		model, err := malleable.ParseSpeedupModel(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec, func(b *testing.B) {
			runner := malleable.NewOnlineRunner()
			res := &malleable.OnlineResult{}
			opts := malleable.OnlineOptions{Model: model}
			if err := runner.RunInto(res, 8, policy, arrivals, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := runner.RunInto(res, 8, policy, arrivals, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
