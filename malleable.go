package malleable

import (
	"math/rand"

	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/schedule"
)

// Task is a work-preserving malleable task: volume V (sequential work),
// weight w, degree bound δ (maximum simultaneous processors) and an optional
// due date.
type Task = schedule.Task

// Instance is a scheduling problem: P identical processors and a task set.
type Instance = schedule.Instance

// Schedule is a column-based fractional schedule (the MWCT-CB-F formulation
// of the paper): between two consecutive completion times every task holds a
// constant, possibly fractional, number of processors.
type Schedule = schedule.ColumnSchedule

// ProcessorSchedule is an integral schedule: each processor executes a
// sequence of task segments. It is obtained from a Schedule via
// ToProcessorSchedule (Theorem 3 of the paper).
type ProcessorSchedule = schedule.ProcessorAssignment

// GreedyResult pairs a greedy schedule with the task order that produced it.
type GreedyResult = core.GreedyResult

// OptimalResult describes an optimal schedule found by the exact solver.
type OptimalResult = exact.OrderSolution

// NewInstance builds and validates an instance.
func NewInstance(p float64, tasks []Task) (*Instance, error) {
	return schedule.NewInstance(p, tasks)
}

// WDEQ runs the non-clairvoyant weighted dynamic equipartition algorithm
// (Algorithm 1 of the paper) and returns the resulting schedule. WDEQ never
// looks at task volumes when taking decisions and is a 2-approximation of the
// optimal weighted completion time (Theorem 4).
func WDEQ(inst *Instance) (*Schedule, error) { return core.RunWDEQ(inst) }

// DEQ runs the unweighted dynamic equipartition baseline.
func DEQ(inst *Instance) (*Schedule, error) { return core.RunDEQ(inst) }

// WaterFill rebuilds a valid schedule in which task i completes exactly at
// completions[i], or reports that no such schedule exists (Algorithm WF,
// Theorem 8 of the paper). The result is the paper's normal form.
func WaterFill(inst *Instance, completions []float64) (*Schedule, error) {
	return core.WaterFill(inst, completions)
}

// Feasible reports whether some valid schedule meets the given per-task
// completion times.
func Feasible(inst *Instance, completions []float64) bool {
	return core.WaterFillFeasible(inst, completions)
}

// Normalize rebuilds the normal form of an arbitrary valid schedule from its
// completion times, preserving the objective value.
func Normalize(s *Schedule) (*Schedule, error) { return core.Normalize(s) }

// Greedy builds the greedy schedule for the given task order (Algorithm 3 of
// the paper): each task, in order, receives as much of the remaining capacity
// as its degree bound allows, as early as possible.
func Greedy(inst *Instance, order []int) (*Schedule, error) { return core.Greedy(inst, order) }

// GreedySmith runs Greedy with Smith's ordering (non-decreasing V_i/w_i).
func GreedySmith(inst *Instance) (*GreedyResult, error) { return core.GreedySmith(inst) }

// BestGreedy searches for the best greedy schedule: exhaustively over all
// orders for small instances, over a heuristic portfolio plus extraRandom
// random orders otherwise. rng may be nil for a deterministic default.
func BestGreedy(inst *Instance, rng *rand.Rand, extraRandom int) (*GreedyResult, error) {
	return core.BestGreedy(inst, rng, extraRandom)
}

// Optimal computes an optimal schedule for small instances by enumerating
// completion orders and solving the linear program of Corollary 1 for each.
func Optimal(inst *Instance) (*OptimalResult, error) {
	return exact.Optimal(inst, exact.Options{BuildSchedule: true})
}

// OptimalObjective returns only the optimal objective value.
func OptimalObjective(inst *Instance) (float64, error) { return exact.OptimalObjective(inst) }

// CmaxOptimal builds a schedule with the optimal makespan
// max(ΣV_i/P, max_i V_i/δ_i), stretching every task to that common deadline.
func CmaxOptimal(inst *Instance) (*Schedule, error) { return core.CmaxOptimal(inst) }

// MinimizeMaxLateness computes a schedule minimizing max_i (C_i − Due_i)
// using the water-filling feasibility test, and returns the optimal lateness.
func MinimizeMaxLateness(inst *Instance) (*Schedule, float64, error) {
	return core.MinimizeMaxLateness(inst)
}

// SquashedAreaBound returns A(I), the optimal objective when degree bounds
// are ignored (Smith's rule on the squashed platform); it is a lower bound of
// the optimum.
func SquashedAreaBound(inst *Instance) float64 { return core.SquashedAreaBound(inst) }

// HeightBound returns H(I) = Σ w_i·V_i/δ_i, the optimal objective on an
// unbounded platform; it is a lower bound of the optimum.
func HeightBound(inst *Instance) float64 { return core.HeightBound(inst) }

// LowerBound returns max(A(I), H(I)).
func LowerBound(inst *Instance) float64 { return core.LowerBound(inst) }

// ToProcessorSchedule converts a fractional column-based schedule into an
// integral per-processor schedule with the same completion times, following
// the constructive proof of Theorem 3. The instance must have an integer
// number of processors.
func ToProcessorSchedule(s *Schedule) (*ProcessorSchedule, error) {
	return schedule.FromColumns(s)
}
