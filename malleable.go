package malleable

import (
	"io"
	"math/rand"

	"github.com/malleable-sched/malleable/internal/cluster"
	"github.com/malleable-sched/malleable/internal/core"
	"github.com/malleable-sched/malleable/internal/engine"
	"github.com/malleable-sched/malleable/internal/exact"
	"github.com/malleable-sched/malleable/internal/obs"
	"github.com/malleable-sched/malleable/internal/schedule"
	"github.com/malleable-sched/malleable/internal/speedup"
	"github.com/malleable-sched/malleable/internal/workload"
)

// Task is a work-preserving malleable task: volume V (sequential work),
// weight w, degree bound δ (maximum simultaneous processors) and an optional
// due date.
type Task = schedule.Task

// Instance is a scheduling problem: P identical processors and a task set.
type Instance = schedule.Instance

// Schedule is a column-based fractional schedule (the MWCT-CB-F formulation
// of the paper): between two consecutive completion times every task holds a
// constant, possibly fractional, number of processors.
type Schedule = schedule.ColumnSchedule

// ProcessorSchedule is an integral schedule: each processor executes a
// sequence of task segments. It is obtained from a Schedule via
// ToProcessorSchedule (Theorem 3 of the paper).
type ProcessorSchedule = schedule.ProcessorAssignment

// GreedyResult pairs a greedy schedule with the task order that produced it.
type GreedyResult = core.GreedyResult

// OptimalResult describes an optimal schedule found by the exact solver.
type OptimalResult = exact.OrderSolution

// NewInstance builds and validates an instance.
func NewInstance(p float64, tasks []Task) (*Instance, error) {
	return schedule.NewInstance(p, tasks)
}

// WDEQ runs the non-clairvoyant weighted dynamic equipartition algorithm
// (Algorithm 1 of the paper) and returns the resulting schedule. WDEQ never
// looks at task volumes when taking decisions and is a 2-approximation of the
// optimal weighted completion time (Theorem 4).
func WDEQ(inst *Instance) (*Schedule, error) { return core.RunWDEQ(inst) }

// DEQ runs the unweighted dynamic equipartition baseline.
func DEQ(inst *Instance) (*Schedule, error) { return core.RunDEQ(inst) }

// WaterFill rebuilds a valid schedule in which task i completes exactly at
// completions[i], or reports that no such schedule exists (Algorithm WF,
// Theorem 8 of the paper). The result is the paper's normal form.
func WaterFill(inst *Instance, completions []float64) (*Schedule, error) {
	return core.WaterFill(inst, completions)
}

// Feasible reports whether some valid schedule meets the given per-task
// completion times.
func Feasible(inst *Instance, completions []float64) bool {
	return core.WaterFillFeasible(inst, completions)
}

// Normalize rebuilds the normal form of an arbitrary valid schedule from its
// completion times, preserving the objective value.
func Normalize(s *Schedule) (*Schedule, error) { return core.Normalize(s) }

// Greedy builds the greedy schedule for the given task order (Algorithm 3 of
// the paper): each task, in order, receives as much of the remaining capacity
// as its degree bound allows, as early as possible.
func Greedy(inst *Instance, order []int) (*Schedule, error) { return core.Greedy(inst, order) }

// GreedySmith runs Greedy with Smith's ordering (non-decreasing V_i/w_i).
func GreedySmith(inst *Instance) (*GreedyResult, error) { return core.GreedySmith(inst) }

// BestGreedy searches for the best greedy schedule: exhaustively over all
// orders for small instances, over a heuristic portfolio plus extraRandom
// random orders otherwise. rng may be nil for a deterministic default.
func BestGreedy(inst *Instance, rng *rand.Rand, extraRandom int) (*GreedyResult, error) {
	return core.BestGreedy(inst, rng, extraRandom)
}

// Optimal computes an optimal schedule for small instances by enumerating
// completion orders and solving the linear program of Corollary 1 for each.
func Optimal(inst *Instance) (*OptimalResult, error) {
	return exact.Optimal(inst, exact.Options{BuildSchedule: true})
}

// OptimalObjective returns only the optimal objective value.
func OptimalObjective(inst *Instance) (float64, error) { return exact.OptimalObjective(inst) }

// CmaxOptimal builds a schedule with the optimal makespan
// max(ΣV_i/P, max_i V_i/δ_i), stretching every task to that common deadline.
func CmaxOptimal(inst *Instance) (*Schedule, error) { return core.CmaxOptimal(inst) }

// MinimizeMaxLateness computes a schedule minimizing max_i (C_i − Due_i)
// using the water-filling feasibility test, and returns the optimal lateness.
func MinimizeMaxLateness(inst *Instance) (*Schedule, float64, error) {
	return core.MinimizeMaxLateness(inst)
}

// SquashedAreaBound returns A(I), the optimal objective when degree bounds
// are ignored (Smith's rule on the squashed platform); it is a lower bound of
// the optimum.
func SquashedAreaBound(inst *Instance) float64 { return core.SquashedAreaBound(inst) }

// HeightBound returns H(I) = Σ w_i·V_i/δ_i, the optimal objective on an
// unbounded platform; it is a lower bound of the optimum.
func HeightBound(inst *Instance) float64 { return core.HeightBound(inst) }

// LowerBound returns max(A(I), H(I)).
func LowerBound(inst *Instance) float64 { return core.LowerBound(inst) }

// Arrival is one task of an online workload: the task itself, its release
// date and the tenant that submitted it. Streams of arrivals drive the online
// engine (RunOnline); unlike a task of a static Instance, a zero volume is
// legal and completes the instant it is admitted.
type Arrival = engine.Arrival

// OnlinePolicy is an online allocation policy for the arrival-driven engine.
// Use OnlinePolicyByName for the bundled policies (WDEQ, DEQ, weight-greedy,
// smith-ratio) or implement the interface for a custom one. Allocate follows
// the append-into-dst convention: the engine hands the policy a reusable
// buffer and the policy appends one entry per alive task, which is what keeps
// the steady-state event loop allocation-free.
type OnlinePolicy = engine.Policy

// SpeedupModel maps an allocation of processors to an instantaneous
// processing rate — the kernel's pluggable rate model. The paper's
// work-preserving linear model (speedup.LinearCap) is the default wherever a
// model is not given; ParseSpeedupModel resolves the bundled alternatives
// (concave power law, Amdahl's law, time-varying platform capacity).
type SpeedupModel = speedup.Model

// ParseSpeedupModel resolves a speedup-model spec: "linear",
// "powerlaw[:alpha]", "amdahl[:sigma]", or "platform:cap@t0,cap@t1,...". The
// empty string is the linear default.
func ParseSpeedupModel(spec string) (SpeedupModel, error) { return speedup.ParseModel(spec) }

// SpeedupModelNames lists the accepted speedup-model spec forms.
func SpeedupModelNames() []string { return speedup.ModelNames() }

// OnlineRunner owns the reusable scratch of the online engine's event loop.
// After a warm-up run, repeated runs of similar size perform zero heap
// allocations per event — hold one per goroutine for benchmark loops, load
// generators and servers. The zero value is ready to use.
type OnlineRunner = engine.Runner

// NewOnlineRunner returns a fresh OnlineRunner.
func NewOnlineRunner() *OnlineRunner { return engine.NewRunner() }

// OnlineOptions tunes an online run: the speedup model (Model, nil = the
// paper's linear model), decision tracing and event bounds. The zero value is
// the production configuration: linear model, tracing off, default safety
// bound.
type OnlineOptions = engine.Options

// StaticRunResult is the outcome of replaying a static instance on the
// online kernel: engine metrics plus, under linear models, the reconstructed
// column-based schedule.
type StaticRunResult = engine.StaticResult

// OnlineResult is the outcome of an online run: per-task flow times plus
// aggregate weighted-flow, makespan and throughput metrics.
type OnlineResult = engine.Result

// OnlineLoadResult merges the outcomes of a sharded online run.
type OnlineLoadResult = engine.LoadResult

// OnlinePolicyByName resolves one of the bundled online policies: "wdeq" and
// "deq" (the paper's non-clairvoyant equipartition algorithms), the
// non-clairvoyant "weight-greedy" priority policy, or the clairvoyant
// "smith-ratio" baseline.
func OnlinePolicyByName(name string) (OnlinePolicy, error) { return engine.PolicyByName(name) }

// RunOnline executes an online policy on an arrival stream over a platform of
// capacity p: the discrete-event engine admits tasks at their release dates,
// re-invokes the policy at every arrival and completion, and reports per-task
// flow metrics. This is the genuine online setting the paper's non-clairvoyant
// algorithms were designed for.
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnline(p float64, policy OnlinePolicy, arrivals []Arrival) (*OnlineResult, error) {
	return engine.Run(p, policy, arrivals)
}

// RunOnlineWithOptions is RunOnline with explicit options — most notably the
// speedup model: Options.Model switches the kernel from the paper's linear
// speedup to a concave or time-varying-capacity scenario without touching the
// policy or the workload.
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnlineWithOptions(p float64, policy OnlinePolicy, arrivals []Arrival, opts OnlineOptions) (*OnlineResult, error) {
	return engine.RunWithOptions(p, policy, arrivals, opts)
}

// RunStatic replays a static instance (all tasks released at time zero — the
// offline setting of the paper) on the online kernel. Under a linear model
// the result carries a validated column-based Schedule reconstructed from the
// decision trace; non-linear models report engine metrics only.
func RunStatic(inst *Instance, policy OnlinePolicy, opts OnlineOptions) (*StaticRunResult, error) {
	return engine.RunStatic(inst, policy, opts)
}

// RunOnlineShards runs shards independent online engines concurrently — one
// goroutine each, with per-shard seeds derived from baseSeed — and merges
// their statistics deterministically. The source callback produces the
// arrival stream of each shard.
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnlineShards(p float64, policy OnlinePolicy, source func(shard int, seed int64) ([]Arrival, error), shards int, baseSeed int64) (*OnlineLoadResult, error) {
	return engine.RunShards(p, policy, source, shards, baseSeed)
}

// RunOnlineShardsWithOptions is RunOnlineShards with explicit options; the
// speedup model (and any other option) applies uniformly to every shard.
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnlineShardsWithOptions(p float64, policy OnlinePolicy, source func(shard int, seed int64) ([]Arrival, error), shards int, baseSeed int64, opts OnlineOptions) (*OnlineLoadResult, error) {
	return engine.RunShardsWithOptions(p, policy, source, shards, baseSeed, opts)
}

// ArrivalStream is the pull iterator consumed by the streaming engine: Next
// returns the next arrival in non-decreasing release order, ok=false at the
// end of the stream. StreamArrivals (the workload generator) and
// NewArrivalTraceReader (JSONL replay) produce implementations; any custom
// source — a queue drain, a network feed — can implement it directly. The
// engine validates every pulled arrival and the ordering at its boundary.
type ArrivalStream = engine.ArrivalStream

// TaskMetrics is the per-task outcome a MetricSink observes: identity (ID,
// tenant), shape (weight, processed volume) and timing (release, completion,
// flow).
type TaskMetrics = engine.TaskMetrics

// MetricSink consumes per-task outcomes as tasks retire from a streaming
// run — the output half of the O(alive tasks) memory contract. Bundled
// sinks: NewAggregateSink (constant-memory per-tenant summary),
// NewQuantileSink (fixed-size mergeable flow quantiles), NewFullSink (the
// retain-everything behavior of the slice API, as an explicit choice), and
// CombineSinks to fan out to several.
type MetricSink = engine.MetricSink

// AggregateSink is the constant-memory summary sink: per-tenant task
// counts, flow moments and weighted flow. Sinks from independent shards
// merge deterministically.
type AggregateSink = engine.AggregateSink

// NewAggregateSink returns an empty aggregate sink.
func NewAggregateSink() *AggregateSink { return engine.NewAggregateSink() }

// QuantileSink summarizes flow times in a fixed-size mergeable quantile
// sketch with a relative-accuracy guarantee; p50/p99 of a ten-million-task
// run survive without retaining any per-task rows.
type QuantileSink = engine.SketchSink

// NewQuantileSink returns a quantile sink with relative accuracy alpha;
// alpha <= 0 selects the default (0.5%).
func NewQuantileSink(alpha float64) *QuantileSink { return engine.NewSketchSink(alpha) }

// FullSink retains every per-task row, indexed by task ID — O(total tasks)
// memory, the explicit opt-in replacement for the old unconditional
// retention.
type FullSink = engine.FullSink

// NewFullSink returns an empty full-retention sink; capacity pre-sizes the
// table when the task count is known (0 is fine).
func NewFullSink(capacity int) *FullSink { return engine.NewFullSink(capacity) }

// CombineSinks fans every observation out to each sink in order; nil
// entries are skipped.
func CombineSinks(sinks ...MetricSink) MetricSink { return engine.MultiSink(sinks...) }

// RunOnlineStream executes an online policy over a pulled arrival stream:
// the engine admits arrivals lazily (one look-ahead), keeps only alive tasks
// in scratch, and hands each completed task to sink (nil keeps aggregates
// only) instead of retaining it — so a run's memory is O(peak backlog + sink
// size), independent of the stream length. The returned OnlineResult carries
// the aggregate metrics; its Tasks table stays empty.
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnlineStream(p float64, policy OnlinePolicy, stream ArrivalStream, sink MetricSink) (*OnlineResult, error) {
	return engine.RunStream(p, policy, stream, sink)
}

// RunOnlineStreamWithOptions is RunOnlineStream with explicit options (most
// notably the speedup model).
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnlineStreamWithOptions(p float64, policy OnlinePolicy, stream ArrivalStream, sink MetricSink, opts OnlineOptions) (*OnlineResult, error) {
	return engine.RunStreamWithOptions(p, policy, stream, sink, opts)
}

// RunOnlineShardsStream is the streaming form of RunOnlineShards: each shard
// pulls from its own ArrivalStream and summarizes through aggregate and
// quantile sinks, merged deterministically; no per-task rows are retained
// anywhere and the merged flow quantiles carry the sketch accuracy
// (OnlineLoadResult.FlowApprox).
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnlineShardsStream(p float64, policy OnlinePolicy, source func(shard int, seed int64) (ArrivalStream, error), shards int, baseSeed int64) (*OnlineLoadResult, error) {
	return engine.RunShardsStream(p, policy, source, shards, baseSeed)
}

// RunOnlineShardsStreamWithOptions is RunOnlineShardsStream with explicit
// options, shared by every shard.
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunOnlineShardsStreamWithOptions(p float64, policy OnlinePolicy, source func(shard int, seed int64) (ArrivalStream, error), shards int, baseSeed int64, opts OnlineOptions) (*OnlineLoadResult, error) {
	return engine.RunShardsStreamWithOptions(p, policy, source, shards, baseSeed, opts)
}

// OnlineStepper is the resumable form of the engine event loop: it advances
// a run one event at a time (Step), exposes the virtual clock (Now), the
// live backlog (Backlog) and the next scheduled event (NextEventTime), and
// can be suspended between events — the building block the cluster
// coordinator interleaves into one fleet-wide timeline. Obtain one from an
// OnlineRunner via StartStream (pull a stream to completion on your own
// schedule) or StartFeed (hand arrivals in one at a time with Feed /
// CloseFeed).
type OnlineStepper = engine.Stepper

// ClusterRouter decides which shard each arriving task is dispatched to,
// observing live per-shard backlog/allocation snapshots at dispatch time.
// Bundled routers: "round-robin", "hash-tenant", "least-backlog" and "po2"
// (power-of-two-choices with a deterministic splitmix-seeded RNG); custom
// placements implement the interface directly.
type ClusterRouter = cluster.Router

// ClusterShardState is the live snapshot a router observes about one shard
// at dispatch time.
type ClusterShardState = cluster.ShardState

// ClusterConfig parameterizes RunCluster: shard count, per-shard capacity
// and policy, the router, per-shard engine options, and an optional sink
// observing every completion of the fleet in global virtual-time order.
type ClusterConfig = cluster.Config

// RouterByName constructs one of the bundled cluster routers; the seed
// parameterizes the randomized ones ("po2", "hash-tenant") so a fixed seed
// replays a byte-identical dispatch sequence.
func RouterByName(name string, seed int64) (ClusterRouter, error) {
	return cluster.RouterByName(name, seed)
}

// RouterNames lists the bundled cluster router names.
func RouterNames() []string { return cluster.RouterNames() }

// RunCluster dispatches ONE global arrival stream across a fleet of engine
// shards in a single deterministic virtual timeline: each arrival is routed
// at its release time by the configured router, which sees exact per-shard
// backlog snapshots because the coordinator interleaves shard events in
// global order. This is the layer that makes shard count a scheduling
// variable — compare it with RunOnlineShardsStream, where every shard draws
// its own independent stream and no routing question exists. The merged
// result reports per-shard imbalance (MinShardCompleted, MaxShardCompleted,
// PeakBacklog) so router quality is visible at a glance.
//
// Deprecated: use Run with a RunSpec — see the migration table in the
// package documentation.
func RunCluster(cfg ClusterConfig, stream ArrivalStream) (*OnlineLoadResult, error) {
	return cluster.Run(cfg, stream)
}

// ArrivalTraceWriter records an arrival stream as JSONL (one arrival per
// line) so a workload can be replayed later; ArrivalTraceReader streams it
// back and plugs directly into RunOnlineStream.
type ArrivalTraceWriter = workload.TraceWriter

// ArrivalTraceReader streams a JSONL arrival trace; it satisfies
// ArrivalStream.
type ArrivalTraceReader = workload.TraceReader

// NewArrivalTraceWriter wraps w in a buffered JSONL arrival encoder; call
// Flush when done.
func NewArrivalTraceWriter(w io.Writer) *ArrivalTraceWriter { return workload.NewTraceWriter(w) }

// NewArrivalTraceReader wraps r in a streaming JSONL arrival decoder.
func NewArrivalTraceReader(r io.Reader) *ArrivalTraceReader { return workload.NewTraceReader(r) }

// TenantSpec describes one tenant of a multi-tenant online workload: its
// share of the arriving traffic and the weight multiplier applied to its
// tasks.
type TenantSpec = workload.TenantSpec

// OnlineWorkload parameterizes GenerateArrivals.
type OnlineWorkload struct {
	// Class names the task-shape distribution (the classes of `mwct gen`:
	// uniform, constant-weight, constant-weight-volume, large-delta,
	// unit-class, heterogeneous). Empty means uniform.
	Class string
	// P is the platform capacity the degree bounds are drawn against.
	P float64
	// Process names the arrival process, poisson or bursty. Empty means
	// poisson.
	Process string
	// Rate is the long-run arrival rate (tasks per unit time).
	Rate float64
	// MeanBurst is the mean burst size of the bursty process (>= 1).
	MeanBurst float64
	// Tenants is the tenant mix; nil means a single unit-weight tenant.
	Tenants []TenantSpec
	// CurveMin and CurveMax draw per-task speedup-curve parameters
	// (Task.Curve) uniformly from [CurveMin, CurveMax]; both zero disables
	// per-task curves. The parameters are interpreted by the run's
	// SpeedupModel (power-law exponent, Amdahl serial fraction).
	CurveMin, CurveMax float64
	// TenantSkew is a Zipf exponent reshaping the tenant shares: tenant i's
	// effective share is divided by (i+1)^TenantSkew, so equal base shares
	// become a Zipf-skewed mix. 0 leaves the shares as configured.
	TenantSkew float64
}

// arrivalConfig resolves the workload's class and process names into the
// internal configuration shared by GenerateArrivals and StreamArrivals.
func (w OnlineWorkload) arrivalConfig() (workload.ArrivalConfig, error) {
	className := w.Class
	if className == "" {
		className = "uniform"
	}
	class, err := workload.ParseClass(className)
	if err != nil {
		return workload.ArrivalConfig{}, err
	}
	processName := w.Process
	if processName == "" {
		processName = "poisson"
	}
	process, err := workload.ParseProcess(processName)
	if err != nil {
		return workload.ArrivalConfig{}, err
	}
	return workload.ArrivalConfig{
		Class:      class,
		P:          w.P,
		Process:    process,
		Rate:       w.Rate,
		MeanBurst:  w.MeanBurst,
		Tenants:    w.Tenants,
		CurveMin:   w.CurveMin,
		CurveMax:   w.CurveMax,
		TenantSkew: w.TenantSkew,
	}, nil
}

// GenerateArrivals draws n arrivals deterministically from the seed: task
// shapes from the named instance class, release dates from the arrival
// process, tenants by share (each task's weight is multiplied by its
// tenant's weight). The stream is sorted by release date and ready for
// RunOnline.
func GenerateArrivals(w OnlineWorkload, n int, seed int64) ([]Arrival, error) {
	cfg, err := w.arrivalConfig()
	if err != nil {
		return nil, err
	}
	return workload.GenerateArrivals(cfg, n, seed)
}

// StreamArrivals is the constant-memory form of GenerateArrivals: it returns
// a pull stream that draws the identical arrival sequence lazily, one task
// at a time, ready for RunOnlineStream. Generating ten million arrivals this
// way costs the same memory as generating ten.
func StreamArrivals(w OnlineWorkload, n int, seed int64) (ArrivalStream, error) {
	cfg, err := w.arrivalConfig()
	if err != nil {
		return nil, err
	}
	return workload.NewStream(cfg, n, seed)
}

// ToProcessorSchedule converts a fractional column-based schedule into an
// integral per-processor schedule with the same completion times, following
// the constructive proof of Theorem 3. The instance must have an integer
// number of processors.
func ToProcessorSchedule(s *Schedule) (*ProcessorSchedule, error) {
	return schedule.FromColumns(s)
}

// RunSnapshot is the alloc-free rest-state view of a running engine handed
// to probes: virtual time, backlog, allocated capacity, cumulative
// admitted/completed/event counters and flow totals. Valid only for the
// duration of the ObserveSnapshot call.
type RunSnapshot = engine.Snapshot

// RunProbe observes an online run from inside the event loop: the engine
// calls ObserveSnapshot at its rest state after each event that crosses the
// configured interval (OnlineOptions.Probe, ProbeEveryEvents,
// ProbeInterval), and a final time with Snapshot.Done set. Probes run on the
// engine goroutine and must not block; well-behaved probes (the bundled
// collectors and timelines) also never allocate, preserving the engine's
// zero-allocation steady state.
type RunProbe = engine.Probe

// RunProbeFunc adapts a plain function to the RunProbe interface.
type RunProbeFunc = engine.ProbeFunc

// CombineProbes fans every snapshot out to each probe in order; nil entries
// are skipped. A run takes a single OnlineOptions.Probe, so attaching a
// collector and a timeline together goes through here.
func CombineProbes(probes ...RunProbe) RunProbe { return engine.MultiProbe(probes...) }

// ClusterProbe observes a routed fleet: the coordinator calls ObserveFleet
// after each dispatch (thinnable via ClusterConfig.ProbeEveryDispatches) and
// once after the drain, handing it the same per-shard snapshots routers see.
type ClusterProbe = cluster.Probe

// MetricsRegistry is a process-wide metric namespace: atomic counters and
// gauges (plain and label-vectored) plus sketch-backed summaries, rendered
// deterministically in Prometheus text exposition format by
// WritePrometheus. Updates are lock-free and allocation-free, so hot paths
// (probes, sinks) can mirror into a registry without disturbing the run.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// PrometheusContentType is the Content-Type of the text exposition written
// by MetricsRegistry.WritePrometheus.
const PrometheusContentType = obs.PrometheusContentType

// PrometheusFamily is one parsed metric family of a text exposition.
type PrometheusFamily = obs.Family

// PrometheusSample is one parsed sample line of a metric family.
type PrometheusSample = obs.Sample

// ParsePrometheusExposition strictly parses a Prometheus text exposition
// (format 0.0.4) into its metric families, validating TYPE declarations,
// label syntax and counter monotonicity — usable both to consume a scrape
// and to assert that generated output is well-formed.
func ParsePrometheusExposition(r io.Reader) (map[string]*PrometheusFamily, error) {
	return obs.ParseExposition(r)
}

// EngineCollector is a RunProbe that mirrors every observed engine snapshot
// into mwct_engine_* registry metrics — the bridge from a running engine to
// a Prometheus scrape. Wire it via OnlineOptions.Probe.
type EngineCollector = obs.EngineCollector

// NewEngineCollector registers the engine metric families on r and returns
// the collector.
func NewEngineCollector(r *MetricsRegistry) *EngineCollector { return obs.NewEngineCollector(r) }

// ClusterCollector is a ClusterProbe that mirrors fleet observations into
// mwct_cluster_* and per-shard labeled mwct_shard_* registry metrics. Wire
// it via ClusterConfig.Probe.
type ClusterCollector = obs.ClusterCollector

// NewClusterCollector registers the cluster metric families on r and
// returns the collector.
func NewClusterCollector(r *MetricsRegistry) *ClusterCollector { return obs.NewClusterCollector(r) }

// FlowCollector is a MetricSink that feeds every completed task's flow time
// into an mwct_flow summary (quantiles, sum, count) on the registry. Combine
// it with other sinks via CombineSinks.
type FlowCollector = obs.FlowSink

// NewFlowCollector registers the flow summary on r and returns the sink.
func NewFlowCollector(r *MetricsRegistry) *FlowCollector { return obs.NewFlowSink(r) }

// RunTimeline records a run's trajectory — backlog, throughput, flow
// quantiles over virtual time — as sampled JSONL records. It implements
// RunProbe, MetricSink and ClusterProbe, so one timeline can observe a
// single engine (OnlineOptions.Probe + sink) or a routed fleet
// (ClusterConfig.Probe + Sink). Close flushes the terminal record;
// ReadRunTimeline streams a recorded file back. `mwct loadtest -timeline`
// is the command-line front end.
type RunTimeline = obs.Timeline

// TimelineRecord is one sampled point of a RunTimeline.
type TimelineRecord = obs.TimelineRecord

// NewRunTimeline returns a timeline writing JSONL to w, sampling at the
// given virtual-time interval (0 records every observation).
func NewRunTimeline(w io.Writer, interval float64) *RunTimeline { return obs.NewTimeline(w, interval) }

// ReadRunTimeline decodes a JSONL timeline written by RunTimeline.
func ReadRunTimeline(r io.Reader) ([]TimelineRecord, error) { return obs.ReadTimeline(r) }
